package lp

import (
	"math"
	"testing"
)

// fixVar clamps variable j to value v (lower == upper triggers presolve).
func fixVar(p *Problem, j int, v float64) { p.SetBounds(j, v, v) }

func TestPresolveFixedVarObjectiveFold(t *testing.T) {
	// max 3x + 2y + 5z  s.t. x+y+z ≤ 10, with z fixed at 4:
	// reduces to max 3x+2y s.t. x+y ≤ 6 → x=6 (obj 18) + 5·4 = 38.
	p := NewProblem(3)
	p.SetObjective(0, 3)
	p.SetObjective(1, 2)
	p.SetObjective(2, 5)
	fixVar(p, 2, 4)
	p.AddRow(Row{Coeffs: []Coef{{0, 1}, {1, 1}, {2, 1}}, Op: LE, RHS: 10})
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-38) > eps {
		t.Fatalf("got %v obj %v, want optimal 38", sol.Status, sol.Objective)
	}
	if math.Abs(sol.X[2]-4) > eps {
		t.Errorf("fixed variable moved: x[2] = %v, want 4", sol.X[2])
	}
	checkFeasible(t, p, sol.X)
}

func TestPresolveEmptyRowSatisfied(t *testing.T) {
	// A row whose every variable is fixed drops out when the residual
	// constant satisfies the operator.
	p := NewProblem(2)
	p.SetObjective(0, 1)
	fixVar(p, 1, 3)
	p.AddRow(Row{Coeffs: []Coef{{1, 2}}, Op: LE, RHS: 7}) // 6 ≤ 7: drop
	p.AddRow(Row{Coeffs: []Coef{{1, 1}}, Op: EQ, RHS: 3}) // 3 = 3: drop
	p.AddRow(Row{Coeffs: []Coef{{1, -1}}, Op: GE, RHS: -5} /* -3 ≥ -5 */)
	p.AddRow(Row{Coeffs: []Coef{{0, 1}}, Op: LE, RHS: 2})
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-2) > eps {
		t.Fatalf("got %v obj %v, want optimal 2", sol.Status, sol.Objective)
	}
}

func TestPresolveInfeasibleEmptyRows(t *testing.T) {
	cases := []struct {
		name string
		op   RowOp
		rhs  float64 // residual after fixing x1 = 3 with coefficient 1
	}{
		{"LE-violated", LE, 2},  // 3 ≤ 2 fails
		{"GE-violated", GE, 4},  // 3 ≥ 4 fails
		{"EQ-violated", EQ, 10}, // 3 = 10 fails
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := NewProblem(2)
			p.SetObjective(0, 1)
			p.SetBounds(0, 0, 1)
			fixVar(p, 1, 3)
			p.AddRow(Row{Coeffs: []Coef{{1, 1}}, Op: tc.op, RHS: tc.rhs})
			sol, err := p.Solve(Options{})
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			if sol.Status != Infeasible {
				t.Fatalf("status = %v, want Infeasible", sol.Status)
			}
		})
	}
}

func TestPresolveAllVariablesFixed(t *testing.T) {
	// Everything fixed and consistent: the reduced problem has no variables
	// and the solution is just the fixed point.
	p := NewProblem(2)
	p.SetObjective(0, 2)
	p.SetObjective(1, 3)
	fixVar(p, 0, 1)
	fixVar(p, 1, 2)
	p.AddRow(Row{Coeffs: []Coef{{0, 1}, {1, 1}}, Op: EQ, RHS: 3})
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-8) > eps {
		t.Fatalf("got %v obj %v, want optimal 8", sol.Status, sol.Objective)
	}
	if sol.X[0] != 1 || sol.X[1] != 2 {
		t.Errorf("x = %v, want [1 2]", sol.X)
	}
}

func TestPresolveEmptyColumn(t *testing.T) {
	// A variable that appears in no row (after presolve drops the only row
	// mentioning it) must still settle at its objective-optimal bound.
	p := NewProblem(3)
	p.SetObjective(0, 1)
	p.SetObjective(1, 4) // empty column, positive cost → upper bound
	p.SetBounds(1, 0, 9)
	fixVar(p, 2, 1)
	p.AddRow(Row{Coeffs: []Coef{{2, 5}}, Op: LE, RHS: 5}) // drops entirely
	p.AddRow(Row{Coeffs: []Coef{{0, 1}}, Op: LE, RHS: 3})
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-(3+36+0)) > eps {
		t.Fatalf("got %v obj %v, want optimal 39", sol.Status, sol.Objective)
	}
	if math.Abs(sol.X[1]-9) > eps {
		t.Errorf("empty-column variable x[1] = %v, want 9", sol.X[1])
	}
}

func TestPresolveBasisInflationWarmResolve(t *testing.T) {
	// A presolved solve (fixed vars, dropped rows) must still export a basis
	// that warm-starts a bound-tightened re-solve of the FULL problem to the
	// same optimum the cold path finds. This exercises inflateBasis's row
	// remapping: row 0 drops (all fixed), rows 1..2 survive.
	p := NewProblem(4)
	for j, c := range []float64{3, 5, 2, 4} {
		p.SetObjective(j, c)
		p.SetBounds(j, 0, 10)
	}
	fixVar(p, 3, 2)
	p.AddRow(Row{Coeffs: []Coef{{3, 1}}, Op: LE, RHS: 6}) // 2 ≤ 6: dropped
	p.AddRow(Row{Coeffs: []Coef{{0, 1}, {1, 2}, {3, 1}}, Op: LE, RHS: 14})
	p.AddRow(Row{Coeffs: []Coef{{1, 1}, {2, 1}}, Op: LE, RHS: 8})
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.Basis == nil {
		t.Fatal("presolved optimal solve exported no basis")
	}
	if sol.Basis.nVars != p.NumVars() || sol.Basis.nRows != 3 {
		t.Fatalf("inflated basis sized %dx%d, want %dx3",
			sol.Basis.nVars, sol.Basis.nRows, p.NumVars())
	}

	// Tighten a bound and re-solve warm vs cold.
	q := p.Clone()
	q.SetBounds(1, 0, 3)
	cold, err := q.Solve(Options{})
	if err != nil {
		t.Fatalf("cold re-solve: %v", err)
	}
	warm, err := q.Solve(Options{WarmBasis: sol.Basis})
	if err != nil {
		t.Fatalf("warm re-solve: %v", err)
	}
	if warm.Status != Optimal || math.Abs(warm.Objective-cold.Objective) > eps {
		t.Fatalf("warm obj %v (%v), cold obj %v", warm.Objective, warm.Status, cold.Objective)
	}
	checkFeasible(t, q, warm.X)
}
