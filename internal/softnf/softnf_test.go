package softnf

import (
	"math/rand"
	"testing"

	"sfp/internal/packet"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(DefaultConfig(), 0); err == nil {
		t.Error("zero-length chain accepted")
	}
	if _, err := New(Config{}, 4); err == nil {
		t.Error("zero config accepted")
	}
	r, err := New(DefaultConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.MemoryMB < 600 || r.MemoryMB > 900 {
		t.Errorf("memory %v MB implausible (paper: ≈722 MB)", r.MemoryMB)
	}
}

func TestCapacityCalibration(t *testing.T) {
	// The paper's shape: 4-NF DPDK chain cannot push 64 B packets at line
	// rate (≥10× below the switch) but saturates 100 Gbps at 1500 B.
	r, _ := New(DefaultConfig(), 4)
	small := r.ThroughputGbps(64, 100)
	if small > 10 {
		t.Errorf("64B throughput %v Gbps: gap to 100 Gbps is < 10×", small)
	}
	if small < 2 {
		t.Errorf("64B throughput %v Gbps implausibly low", small)
	}
	large := r.ThroughputGbps(1500, 100)
	if large < 99.9 {
		t.Errorf("1500B throughput %v Gbps, want saturation", large)
	}
	// Monotone in frame size until the NIC bound.
	prev := 0.0
	for _, size := range []int{64, 128, 256, 512, 1024, 1500} {
		tp := r.ThroughputGbps(size, 100)
		if tp < prev-1e-9 {
			t.Errorf("throughput not monotone at %dB", size)
		}
		prev = tp
	}
}

func TestThroughputOfferedBound(t *testing.T) {
	r, _ := New(DefaultConfig(), 4)
	if got := r.ThroughputGbps(1500, 40); got > 40+1e-9 {
		t.Errorf("throughput %v exceeds offered 40", got)
	}
}

func TestLatencyCalibration(t *testing.T) {
	// The paper reports ≈1151 ns average DPDK latency over the size sweep.
	r, _ := New(DefaultConfig(), 4)
	sum := 0.0
	sizes := []int{64, 128, 256, 512, 1024, 1500}
	for _, s := range sizes {
		sum += r.LatencyNs(s)
	}
	avg := sum / float64(len(sizes))
	if avg < 900 || avg > 1500 {
		t.Errorf("mean latency %v ns, want ≈1151", avg)
	}
	// Latency grows with size (DMA) and with chain length (CPU).
	if r.LatencyNs(1500) <= r.LatencyNs(64) {
		t.Error("latency not increasing in frame size")
	}
	r8, _ := New(DefaultConfig(), 8)
	if r8.LatencyNs(256) <= r.LatencyNs(256) {
		t.Error("latency not increasing in chain length")
	}
}

func TestProcessCounts(t *testing.T) {
	r, _ := New(DefaultConfig(), 4)
	p := packet.NewBuilder().WithIPv4(1, 2).WithTCP(1, 2).WithWireLen(256).Build()
	lat := r.Process(p)
	if lat <= 0 {
		t.Error("non-positive latency")
	}
	if r.Processed != 1 {
		t.Errorf("processed = %d", r.Processed)
	}
}

func TestCPUUtilization(t *testing.T) {
	r, _ := New(DefaultConfig(), 4)
	// Near the paper's operating point: ≈30% of 56 cores.
	util := r.CPUUtilization(9e6, 56)
	if util < 0.2 || util > 0.45 {
		t.Errorf("utilization %v, want ≈0.30", util)
	}
	// Saturating load cannot exceed worker + overhead cores.
	if u := r.CPUUtilization(1e9, 56); u > float64(r.Cfg.WorkerCores+7)/56 {
		t.Errorf("utilization %v exceeds core budget", u)
	}
}

func TestJitterBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		j := Jitter(rng, 1000)
		if j < 920 || j > 1080 {
			t.Fatalf("jitter %v outside ±8%%", j)
		}
	}
}

func TestCoresFor(t *testing.T) {
	cfg := DefaultConfig()
	// 10 Gbps of 4-NF chain at 600B frames: pps = 10e9/(620*8) ≈ 2.02 Mpps;
	// cycles = 150+4*590 = 2510 → cores = 2.02e6*2510/2.2e9 ≈ 2.3.
	got := CoresFor(cfg, 4, 10, 600)
	if got < 2.0 || got > 2.6 {
		t.Errorf("CoresFor = %v, want ≈2.3", got)
	}
	// Scales linearly in rate and chain length.
	if double := CoresFor(cfg, 4, 20, 600); double < 1.9*got || double > 2.1*got {
		t.Errorf("not linear in rate: %v vs %v", double, got)
	}
	if CoresFor(cfg, 0, 10, 600) != 0 || CoresFor(cfg, 4, 0, 600) != 0 || CoresFor(cfg, 4, 10, 0) != 0 {
		t.Error("degenerate inputs should cost 0")
	}
}

func TestLatencyUnderLoad(t *testing.T) {
	r, _ := New(DefaultConfig(), 4)
	base := r.LatencyNs(256)
	// Negligible load: ≈ base.
	if got := r.LatencyUnderLoadNs(256, 0.1); got > base*1.05 {
		t.Errorf("light-load latency %v vs base %v", got, base)
	}
	// Monotone in load, and sharply worse near capacity.
	prev := 0.0
	cap := r.ThroughputGbps(256, 1e9) // CPU-bound Gbps at this size
	for _, frac := range []float64{0.2, 0.5, 0.8, 0.95} {
		got := r.LatencyUnderLoadNs(256, frac*cap)
		if got <= prev {
			t.Errorf("latency not increasing at load %v", frac)
		}
		prev = got
	}
	if near := r.LatencyUnderLoadNs(256, 0.95*cap); near < base+5*r.cyclesPerPacket()/r.Cfg.CoreGHz {
		t.Errorf("near-capacity latency %v lacks queueing blow-up (base %v)", near, base)
	}
	// Beyond capacity: finite (clamped) but enormous.
	over := r.LatencyUnderLoadNs(256, 10*cap)
	if over < 100*base {
		t.Errorf("saturated latency %v implausibly low", over)
	}
}
