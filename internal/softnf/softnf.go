// Package softnf models the paper's baseline: a DPDK-accelerated software
// SFC running on commodity servers (§VI-A "Baseline"). It is a calibrated
// cost model, not a packet framework — the Fig. 4/5 comparisons need the
// throughput/latency *shape* of a pps-bound, CPU-driven SFC against the
// line-rate switch: DPDK reaches 100 Gbps only near MTU-sized packets and
// loses ≥10× in packet rate at 64 B, with ≈3× the per-packet latency.
//
// The defaults reproduce the paper's testbed (§VI-A): Xeon Gold 5120T at
// 2.2 GHz, 16 cores assigned to client/SFC/receiver (11 effective SFC
// workers), a 100 Gbps ConnectX-5 NIC, and a 4-NF chain.
package softnf

import (
	"fmt"
	"math/rand"

	"sfp/internal/packet"
)

// Config describes the software NF platform.
type Config struct {
	// CoreGHz is the worker clock rate (default 2.2).
	CoreGHz float64
	// WorkerCores is the number of cores running NF processing
	// (default 11: 16 minus client, receiver and the DPDK master).
	WorkerCores int
	// NICGbps is the NIC line rate (default 100).
	NICGbps float64
	// CyclesPerNF is the per-packet cost of one NF's processing
	// (default 590: header parse + table lookup + action).
	CyclesPerNF float64
	// CyclesIO is the fixed per-packet RX+TX cost (default 150 with DPDK
	// batching amortization).
	CyclesIO float64
	// BatchSize is the DPDK burst size (default 32); latency includes the
	// batch accumulation wait at low load.
	BatchSize int
	// WireHopNs is the added one-way latency for the detour through the NF
	// server (switch→server→switch; default 480 ns: two extra link
	// traversals plus NIC DMA).
	WireHopNs float64
}

// DefaultConfig returns the paper's testbed parameters.
func DefaultConfig() Config {
	return Config{
		CoreGHz:     2.2,
		WorkerCores: 11,
		NICGbps:     100,
		CyclesPerNF: 590,
		CyclesIO:    150,
		BatchSize:   32,
		WireHopNs:   480,
	}
}

// Runtime is a software SFC instance processing packets for one chain.
type Runtime struct {
	Cfg     Config
	ChainNF int // number of NFs in the chain

	// Processed counts packets run through Process.
	Processed uint64
	// MemoryMB models the resident footprint (the paper reports ≈722 MB
	// per SFC): fixed hugepage pools plus per-NF state.
	MemoryMB float64
}

// New creates a runtime for an SFC of chainLen NFs.
func New(cfg Config, chainLen int) (*Runtime, error) {
	if chainLen <= 0 {
		return nil, fmt.Errorf("softnf: chain length %d", chainLen)
	}
	if cfg.WorkerCores <= 0 || cfg.CoreGHz <= 0 {
		return nil, fmt.Errorf("softnf: invalid platform config %+v", cfg)
	}
	return &Runtime{
		Cfg:      cfg,
		ChainNF:  chainLen,
		MemoryMB: 650 + 18*float64(chainLen), // pools + per-NF state
	}, nil
}

// cyclesPerPacket is the full-chain per-packet CPU cost.
func (r *Runtime) cyclesPerPacket() float64 {
	return r.Cfg.CyclesIO + float64(r.ChainNF)*r.Cfg.CyclesPerNF
}

// CapacityPPS returns the aggregate packet rate the worker cores sustain.
func (r *Runtime) CapacityPPS() float64 {
	perCore := r.Cfg.CoreGHz * 1e9 / r.cyclesPerPacket()
	return perCore * float64(r.Cfg.WorkerCores)
}

// ThroughputGbps returns the achievable throughput for a given frame size
// at the given offered load: the minimum of the NIC line rate, the offered
// rate, and the CPU-bound packet rate times frame size.
func (r *Runtime) ThroughputGbps(wireBytes int, offeredGbps float64) float64 {
	line := r.Cfg.NICGbps
	if offeredGbps < line {
		line = offeredGbps
	}
	cpuBound := r.CapacityPPS() * float64(wireBytes+20) * 8 / 1e9
	if cpuBound < line {
		return cpuBound
	}
	return line
}

// LatencyNs returns the modeled per-packet processing latency: the chain's
// CPU time on one core plus a small size-dependent DMA/copy cost. The batch
// I/O overhead is already amortized into CyclesIO. For a 4-NF chain this
// yields ≈1146 ns, matching the paper's measured 1151 ns average (Fig. 5).
// The extra network detour to the NF server is reported separately by
// DetourNs — the paper's Fig. 5 measures processing latency only.
func (r *Runtime) LatencyNs(wireBytes int) float64 {
	cpu := r.cyclesPerPacket() / r.Cfg.CoreGHz // ns on one core
	dma := float64(wireBytes) * 0.008          // ≈0.008 ns/B PCIe+memcpy
	return cpu + dma
}

// DetourNs is the additional round-trip cost of hair-pinning traffic
// through the NF server instead of processing it on-path in the switch
// (Fig. 1's contrast; the paper argues SFP wins more in RTT because of it).
func (r *Runtime) DetourNs() float64 { return 2 * r.Cfg.WireHopNs }

// LatencyUnderLoadNs models per-packet latency at the given offered load:
// base processing latency plus M/D/1 queueing delay as the offered packet
// rate approaches the CPU-bound capacity (ρ → 1). The switch has no such
// term — its pipeline is deterministic at line rate — which is the second
// half of the paper's latency argument (§VI-B): the software baseline
// degrades under load, the switch does not.
func (r *Runtime) LatencyUnderLoadNs(wireBytes int, offeredGbps float64) float64 {
	base := r.LatencyNs(wireBytes)
	capacity := r.CapacityPPS()
	offeredPPS := offeredGbps * 1e9 / (float64(wireBytes+20) * 8)
	rho := offeredPPS / capacity
	if rho >= 1 {
		rho = 0.999 // saturated: report the (huge) near-capacity delay
	}
	if rho < 0 {
		rho = 0
	}
	service := r.cyclesPerPacket() / r.Cfg.CoreGHz
	wait := rho / (2 * (1 - rho)) * service // M/D/1 mean queueing delay
	return base + wait
}

// Process models running one packet through the chain, returning its
// latency. It also exercises a tiny amount of real per-packet work (header
// hashing) so that benchmarks measure something other than arithmetic.
func (r *Runtime) Process(p *packet.Packet) float64 {
	r.Processed++
	_ = p.FiveTuple().Hash()
	return r.LatencyNs(p.WireLen())
}

// CPUUtilization reports the fraction of the server's total cores the SFC
// occupies at the given offered packet rate (the paper reports 30.35% ≈
// 17/56 cores for the full client/SFC/receiver deployment).
func (r *Runtime) CPUUtilization(offeredPPS float64, totalCores int) float64 {
	needed := offeredPPS * r.cyclesPerPacket() / (r.Cfg.CoreGHz * 1e9)
	if needed > float64(r.Cfg.WorkerCores) {
		needed = float64(r.Cfg.WorkerCores)
	}
	// Client + receiver + master cores run regardless.
	overhead := 6.0
	return (needed + overhead) / float64(totalCores)
}

// Jitter returns a reproducible latency jitter sample in ns, modeling
// scheduler and cache noise (uniform ±8%).
func Jitter(rng *rand.Rand, baseNs float64) float64 {
	return baseNs * (0.92 + 0.16*rng.Float64())
}

// CoresFor returns the CPU cores a software deployment would burn to run a
// chainLen-NF SFC at the given rate and mean frame size — the server
// resources SFP saves by offloading the chain to the switch (the paper's
// §II motivation: "these resources should have been sold to customers").
func CoresFor(cfg Config, chainLen int, gbps, meanWireBytes float64) float64 {
	if chainLen <= 0 || gbps <= 0 || meanWireBytes <= 0 {
		return 0
	}
	pps := gbps * 1e9 / ((meanWireBytes + 20) * 8)
	cycles := cfg.CyclesIO + float64(chainLen)*cfg.CyclesPerNF
	return pps * cycles / (cfg.CoreGHz * 1e9)
}
