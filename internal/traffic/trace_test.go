package traffic

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"

	"sfp/internal/packet"
	"sfp/internal/pipeline"
)

func TestTraceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gens := []*FlowGen{
		NewFlowGen(rng, 1, packet.IPv4Addr(20, 0, 0, 1), 8),
		NewFlowGen(rng, 2, packet.IPv4Addr(20, 0, 0, 2), 8),
	}
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	if err := SynthesizeTrace(tw, gens, IMCMix(), 500, 1e6); err != nil {
		t.Fatal(err)
	}
	if tw.Count() != 500 {
		t.Fatalf("wrote %d records", tw.Count())
	}

	tr := NewTraceReader(&buf)
	n := 0
	lastTS := -1.0
	tenants := map[uint32]int{}
	for {
		rec, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
		if rec.TimestampNs <= lastTS {
			t.Fatal("timestamps not strictly increasing")
		}
		lastTS = rec.TimestampNs
		tenants[rec.Tenant]++
		p := rec.Packet()
		if p.WireLen() != rec.WireLen {
			t.Fatalf("materialized wire len %d != %d", p.WireLen(), rec.WireLen)
		}
		if p.Meta.TenantID != rec.Tenant {
			t.Fatal("tenant lost")
		}
	}
	if n != 500 {
		t.Fatalf("read %d records", n)
	}
	if tenants[1] != 250 || tenants[2] != 250 {
		t.Errorf("tenant split = %v, want 250/250", tenants)
	}
	// 1 Mpps → 1000 ns spacing → last timestamp ≈ 499 µs.
	if lastTS < 498e3 || lastTS > 500e3 {
		t.Errorf("last timestamp = %v ns", lastTS)
	}
}

func TestTraceReaderRejectsGarbage(t *testing.T) {
	tr := NewTraceReader(strings.NewReader(`{"ts_ns":1,"tenant":1,"wire_len":0}` + "\n"))
	if _, err := tr.Next(); err == nil {
		t.Error("zero wire_len accepted")
	}
	tr2 := NewTraceReader(strings.NewReader("not json\n"))
	if _, err := tr2.Next(); err == nil {
		t.Error("non-JSON accepted")
	}
}

func TestSynthesizeTraceValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := SynthesizeTrace(NewTraceWriter(&buf), nil, IMCMix(), 10, 1e6); err == nil {
		t.Error("no generators accepted")
	}
	rng := rand.New(rand.NewSource(2))
	g := NewFlowGen(rng, 1, 5, 4)
	if err := SynthesizeTrace(NewTraceWriter(&buf), []*FlowGen{g}, IMCMix(), 10, 0); err == nil {
		t.Error("zero rate accepted")
	}
}

// fakeProc counts invocations and drops every 5th packet.
type fakeProc struct{ n int }

func (f *fakeProc) Process(p *packet.Packet, nowNs float64) pipeline.Result {
	f.n++
	if f.n%5 == 0 {
		return pipeline.Result{Dropped: true}
	}
	return pipeline.Result{LatencyNs: 300 + float64(f.n%3), Passes: 1 + f.n%2}
}

func TestReplayAggregates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := NewFlowGen(rng, 9, packet.IPv4Addr(20, 0, 0, 1), 4)
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	if err := SynthesizeTrace(tw, []*FlowGen{g}, IMCMix(), 100, 1e6); err != nil {
		t.Fatal(err)
	}
	proc := &fakeProc{}
	st, err := Replay(NewTraceReader(&buf), proc)
	if err != nil {
		t.Fatal(err)
	}
	if st.Packets != 100 || st.Drops != 20 {
		t.Errorf("packets/drops = %d/%d, want 100/20", st.Packets, st.Drops)
	}
	if st.MeanLatency < 300 || st.MeanLatency > 303 {
		t.Errorf("mean latency = %v", st.MeanLatency)
	}
	if st.MaxPasses != 2 {
		t.Errorf("max passes = %d", st.MaxPasses)
	}
	if st.ByTenant[9] != 100 {
		t.Errorf("tenant count = %v", st.ByTenant)
	}
}
