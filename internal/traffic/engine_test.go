package traffic

import (
	"math"
	"math/rand"
	"testing"

	"sfp/internal/nf"
	"sfp/internal/packet"
	"sfp/internal/pipeline"
	"sfp/internal/vswitch"
)

var engineVIP = packet.IPv4Addr(20, 0, 0, 1)

// newEngineSwitch builds a 2-NF (firewall -> router) switch with tenant 7's
// chain allocated, the minimal data plane the engine tests replay against.
func newEngineSwitch() (*vswitch.VSwitch, error) {
	v := vswitch.New(pipeline.New(pipeline.DefaultConfig()))
	if _, err := v.InstallPhysicalNF(0, nf.Firewall, 100); err != nil {
		return nil, err
	}
	if _, err := v.InstallPhysicalNF(1, nf.Router, 100); err != nil {
		return nil, err
	}
	sfc := &vswitch.SFC{
		Tenant:        7,
		BandwidthGbps: 10,
		NFs: []*nf.Config{
			{Type: nf.Firewall, Rules: []nf.ConfigRule{{
				Matches: []pipeline.Match{pipeline.Wildcard(), pipeline.Wildcard(), pipeline.Wildcard(), pipeline.Wildcard()},
				Action:  "permit",
			}}},
			{Type: nf.Router, Rules: []nf.ConfigRule{{
				Matches: []pipeline.Match{pipeline.Prefix(uint64(packet.IPv4Addr(20, 0, 0, 0)), 8)},
				Action:  "fwd", Params: []uint64{3},
			}}},
		},
	}
	if _, err := v.Allocate(sfc); err != nil {
		return nil, err
	}
	return v, nil
}

// genWorkload draws n packets with a fixed seed so two calls produce
// identical (but independent) workloads.
func genWorkload(seed int64, n int) []Item {
	rng := rand.New(rand.NewSource(seed))
	gen := NewFlowGen(rng, 7, engineVIP, 32)
	return GenItems(gen, n, 128, 1000)
}

// TestEngineWorker1MatchesSequential: the engine at Workers=1 must be
// bit-for-bit identical to a plain sequential loop over the same workload.
func TestEngineWorker1MatchesSequential(t *testing.T) {
	const n = 400
	// Sequential reference.
	vs, err := newEngineSwitch()
	if err != nil {
		t.Fatal(err)
	}
	var wantSum float64
	wantPasses, wantDrops := 0, 0
	var wantLats []float64
	for _, it := range genWorkload(3, n) {
		res := vs.Process(it.Pkt, it.NowNs)
		if res.Passes > wantPasses {
			wantPasses = res.Passes
		}
		if res.Dropped {
			wantDrops++
			continue
		}
		wantSum += res.LatencyNs
		wantLats = append(wantLats, res.LatencyNs)
	}

	eng := Engine{
		Workers:       1,
		New:           func(int) (Processor, error) { v, err := newEngineSwitch(); return v, err },
		KeepLatencies: true,
	}
	stats, err := eng.Replay(genWorkload(3, n))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Packets != n || stats.Drops != wantDrops || stats.Passes != wantPasses {
		t.Errorf("packets/drops/passes = %d/%d/%d, want %d/%d/%d",
			stats.Packets, stats.Drops, stats.Passes, n, wantDrops, wantPasses)
	}
	if stats.LatencySumNs != wantSum {
		t.Errorf("latency sum = %v, want %v (must be bit-identical at workers=1)", stats.LatencySumNs, wantSum)
	}
	if len(stats.Latencies) != len(wantLats) {
		t.Fatalf("latencies len = %d, want %d", len(stats.Latencies), len(wantLats))
	}
	for i := range wantLats {
		if stats.Latencies[i] != wantLats[i] {
			t.Fatalf("latency[%d] = %v, want %v", i, stats.Latencies[i], wantLats[i])
		}
	}
}

// TestEngineWorkersAgree: per-packet results are independent of worker
// count; aggregate sums agree to float tolerance.
func TestEngineWorkersAgree(t *testing.T) {
	const n = 600
	run := func(workers int) EngineStats {
		eng := Engine{
			Workers:       workers,
			New:           func(int) (Processor, error) { v, err := newEngineSwitch(); return v, err },
			KeepLatencies: true,
		}
		stats, err := eng.Replay(genWorkload(9, n))
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	seq := run(1)
	par := run(4)
	if par.Packets != seq.Packets || par.Drops != seq.Drops || par.Passes != seq.Passes {
		t.Errorf("parallel packets/drops/passes = %d/%d/%d, want %d/%d/%d",
			par.Packets, par.Drops, par.Passes, seq.Packets, seq.Drops, seq.Passes)
	}
	// Chunks are contiguous and merged in worker order, so per-packet
	// latencies line up exactly with the sequential ordering.
	for i := range seq.Latencies {
		if par.Latencies[i] != seq.Latencies[i] {
			t.Fatalf("latency[%d] = %v parallel vs %v sequential", i, par.Latencies[i], seq.Latencies[i])
		}
	}
	if diff := math.Abs(par.LatencySumNs - seq.LatencySumNs); diff > 1e-6*seq.LatencySumNs {
		t.Errorf("latency sums diverge: %v vs %v", par.LatencySumNs, seq.LatencySumNs)
	}
}

// TestEngineSharedProcessor runs every worker against ONE shared switch —
// legal for stateless NFs now that pipeline counters are atomic and lookups
// are read-only. Meaningful under -race; also checks no count is lost.
func TestEngineSharedProcessor(t *testing.T) {
	vs, err := newEngineSwitch()
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	eng := Engine{
		Workers: 8,
		New:     func(int) (Processor, error) { return vs, nil },
	}
	stats, err := eng.Replay(genWorkload(5, n))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Packets != n {
		t.Errorf("packets = %d, want %d", stats.Packets, n)
	}
	if got := vs.Pipe.Processed(); got != n {
		t.Errorf("pipeline processed = %d, want %d (lost atomic updates)", got, n)
	}
}

// TestEngineErrors: factory failures and a missing factory surface as
// errors, not panics.
func TestEngineErrors(t *testing.T) {
	eng := Engine{Workers: 2}
	if _, err := eng.Replay(genWorkload(1, 4)); err == nil {
		t.Error("nil factory accepted")
	}
	eng.New = func(w int) (Processor, error) {
		if w == 1 {
			return nil, errFake
		}
		v, err := newEngineSwitch()
		return v, err
	}
	if _, err := eng.Replay(genWorkload(1, 4)); err == nil {
		t.Error("factory error swallowed")
	}
}

var errFake = fakeErr("boom")

type fakeErr string

func (e fakeErr) Error() string { return string(e) }
