package traffic

import (
	"testing"

	"sfp/internal/packet"
	"sfp/internal/pipeline"
)

// TestReplayAllocFlat asserts the fix for the parallel-replay allocation
// regression (BENCH_fastpath.json showed allocs/op growing 103 → 803 from
// workers=1 to workers=8): with the persistent worker pool, steady-state
// Replay performs no per-call allocation at any worker count.
func TestReplayAllocFlat(t *testing.T) {
	items := genWorkload(13, 512)
	got := map[int]float64{}
	for _, workers := range []int{1, 2, 4, 8} {
		eng := Engine{
			Workers: workers,
			New:     func(int) (Processor, error) { v, err := newEngineSwitch(); return v, err },
		}
		// Warm the pool: builds processors, scratches, and chunk buffers.
		if _, err := eng.Replay(items); err != nil {
			t.Fatal(err)
		}
		got[workers] = testing.AllocsPerRun(20, func() {
			eng.Replay(items)
		})
		eng.Close()
	}
	for _, workers := range []int{2, 4, 8} {
		if got[workers] != got[1] {
			t.Errorf("allocs/op not flat in workers: %v at workers=1 vs %v at workers=%d",
				got[1], got[workers], workers)
		}
	}
	if got[1] > 0 {
		t.Errorf("steady-state Replay allocates %v/op, want 0", got[1])
	}
}

// plainProc wraps a switch while hiding its BatchCompiler interface, forcing
// the engine onto the per-packet fallback path.
type plainProc struct{ p Processor }

func (pp plainProc) Process(pk *packet.Packet, nowNs float64) pipeline.Result {
	return pp.p.Process(pk, nowNs)
}

// TestEngineBatchMatchesFallback proves the batched compiled path and the
// per-packet fallback produce bit-identical replay statistics.
func TestEngineBatchMatchesFallback(t *testing.T) {
	const n = 500
	run := func(plain bool) EngineStats {
		eng := Engine{
			Workers: 3,
			New: func(int) (Processor, error) {
				v, err := newEngineSwitch()
				if err != nil {
					return nil, err
				}
				if plain {
					return plainProc{v}, nil
				}
				return v, nil
			},
			KeepLatencies: true,
		}
		defer eng.Close()
		stats, err := eng.Replay(genWorkload(21, n))
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	batched, fallback := run(false), run(true)
	if batched.Packets != fallback.Packets || batched.Drops != fallback.Drops ||
		batched.Passes != fallback.Passes || batched.TablesApplied != fallback.TablesApplied {
		t.Errorf("aggregate stats diverge: batched %+v vs fallback %+v", batched, fallback)
	}
	if batched.LatencySumNs != fallback.LatencySumNs {
		t.Errorf("latency sums diverge: %v vs %v", batched.LatencySumNs, fallback.LatencySumNs)
	}
	for i := range fallback.Latencies {
		if batched.Latencies[i] != fallback.Latencies[i] {
			t.Fatalf("latency[%d]: batched %v vs fallback %v", i, batched.Latencies[i], fallback.Latencies[i])
		}
	}
}

// TestEngineCloseAndRebuild: the pool survives Close (next Replay rebuilds)
// and a Workers change between calls.
func TestEngineCloseAndRebuild(t *testing.T) {
	calls := 0
	eng := Engine{
		Workers: 2,
		New: func(int) (Processor, error) {
			calls++
			v, err := newEngineSwitch()
			return v, err
		},
	}
	items := genWorkload(31, 64)
	if _, err := eng.Replay(items); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("factory calls = %d, want 2", calls)
	}
	if _, err := eng.Replay(items); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("pool rebuilt on second Replay: %d factory calls", calls)
	}
	eng.Close()
	if _, err := eng.Replay(items); err != nil {
		t.Fatal(err)
	}
	if calls != 4 {
		t.Errorf("factory calls after Close+Replay = %d, want 4", calls)
	}
	eng.Workers = 3
	if _, err := eng.Replay(items); err != nil {
		t.Fatal(err)
	}
	if calls != 7 {
		t.Errorf("factory calls after Workers change = %d, want 7", calls)
	}
	eng.Close()
}

// TestEngineEmptyWorkload: zero items is a no-op, not a hang or panic.
func TestEngineEmptyWorkload(t *testing.T) {
	eng := Engine{
		Workers: 4,
		New:     func(int) (Processor, error) { v, err := newEngineSwitch(); return v, err },
	}
	defer eng.Close()
	stats, err := eng.Replay(nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Packets != 0 {
		t.Errorf("packets = %d, want 0", stats.Packets)
	}
}
