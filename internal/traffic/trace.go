package traffic

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"sfp/internal/packet"
)

// TraceRecord is one packet of a captured or synthesized trace, in the
// JSON-lines trace format (one record per line). Traces let experiments
// replay identical workloads across runs and tools (the role the Benson
// IMC'10 capture plays in the paper's testbed experiments).
type TraceRecord struct {
	// TimestampNs is the packet's arrival time on the simulated clock.
	TimestampNs float64 `json:"ts_ns"`
	// Tenant is the tenant ID (serialized into the VLAN tag on replay).
	Tenant uint32 `json:"tenant"`
	SrcIP  uint32 `json:"src_ip"`
	DstIP  uint32 `json:"dst_ip"`
	Proto  uint8  `json:"proto"`
	Sport  uint16 `json:"sport"`
	Dport  uint16 `json:"dport"`
	// WireLen is the frame size in bytes.
	WireLen int `json:"wire_len"`
}

// Packet materializes the record.
func (r TraceRecord) Packet() *packet.Packet {
	b := packet.NewBuilder().WithTenant(r.Tenant).WithIPv4(r.SrcIP, r.DstIP)
	if r.Proto == packet.ProtoUDP {
		b = b.WithUDP(r.Sport, r.Dport)
	} else {
		b = b.WithTCP(r.Sport, r.Dport)
	}
	return b.WithWireLen(r.WireLen).Build()
}

// TraceWriter streams records to JSON lines.
type TraceWriter struct {
	w   *bufio.Writer
	enc *json.Encoder
	n   int
}

// NewTraceWriter wraps a writer.
func NewTraceWriter(w io.Writer) *TraceWriter {
	bw := bufio.NewWriter(w)
	return &TraceWriter{w: bw, enc: json.NewEncoder(bw)}
}

// Write appends one record.
func (tw *TraceWriter) Write(r TraceRecord) error {
	tw.n++
	return tw.enc.Encode(r)
}

// Count returns records written so far.
func (tw *TraceWriter) Count() int { return tw.n }

// Flush drains the buffer; call before closing the underlying writer.
func (tw *TraceWriter) Flush() error { return tw.w.Flush() }

// TraceReader streams records from JSON lines.
type TraceReader struct {
	dec  *json.Decoder
	line int
}

// NewTraceReader wraps a reader.
func NewTraceReader(r io.Reader) *TraceReader {
	return &TraceReader{dec: json.NewDecoder(bufio.NewReader(r))}
}

// Next returns the next record, io.EOF at the end, or a positioned error.
func (tr *TraceReader) Next() (TraceRecord, error) {
	var rec TraceRecord
	err := tr.dec.Decode(&rec)
	if err == io.EOF {
		return rec, io.EOF
	}
	tr.line++
	if err != nil {
		return rec, fmt.Errorf("traffic: trace record %d: %w", tr.line, err)
	}
	if rec.WireLen <= 0 {
		return rec, fmt.Errorf("traffic: trace record %d: wire_len %d", tr.line, rec.WireLen)
	}
	return rec, nil
}

// SynthesizeTrace writes n records for the given tenants at the given
// aggregate packet rate (pps), with IMC'10-style sizes and per-tenant flow
// pools. Tenants are weighted equally.
func SynthesizeTrace(tw *TraceWriter, gens []*FlowGen, mix SizeMix, n int, pps float64) error {
	if len(gens) == 0 {
		return fmt.Errorf("traffic: no flow generators")
	}
	if pps <= 0 {
		return fmt.Errorf("traffic: non-positive packet rate %v", pps)
	}
	interval := 1e9 / pps
	now := 0.0
	for i := 0; i < n; i++ {
		g := gens[i%len(gens)]
		size := mix.Sample(g.rng)
		p := g.Next(size)
		ft := p.FiveTuple()
		rec := TraceRecord{
			TimestampNs: now,
			Tenant:      p.Meta.TenantID,
			SrcIP:       ft.SrcIP, DstIP: ft.DstIP,
			Proto: ft.Proto, Sport: ft.SrcPort, Dport: ft.DstPort,
			WireLen: p.WireLen(),
		}
		if err := tw.Write(rec); err != nil {
			return err
		}
		now += interval
	}
	return tw.Flush()
}

// ReplayStats aggregates a replay run.
type ReplayStats struct {
	Packets     int
	Drops       int
	MeanLatency float64
	MaxPasses   int
	// ByTenant counts packets per tenant.
	ByTenant map[uint32]int
}

// Replay pushes every trace record through the processor (see Processor in
// engine.go — satisfied by vswitch.VSwitch and pipeline.Pipeline directly)
// in timestamp order and aggregates the outcome.
func Replay(tr *TraceReader, proc Processor) (ReplayStats, error) {
	st := ReplayStats{ByTenant: map[uint32]int{}}
	total := 0.0
	for {
		rec, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return st, err
		}
		res := proc.Process(rec.Packet(), rec.TimestampNs)
		st.Packets++
		st.ByTenant[rec.Tenant]++
		if res.Dropped {
			st.Drops++
			continue
		}
		total += res.LatencyNs
		if res.Passes > st.MaxPasses {
			st.MaxPasses = res.Passes
		}
	}
	if delivered := st.Packets - st.Drops; delivered > 0 {
		st.MeanLatency = total / float64(delivered)
	}
	return st, nil
}
