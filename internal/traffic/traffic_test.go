package traffic

import (
	"math/rand"
	"testing"

	"sfp/internal/nf"
	"sfp/internal/packet"
)

func TestGenChainsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	chains := GenChains(rng, 50, ChainParams{})
	if len(chains) != 50 {
		t.Fatalf("got %d chains", len(chains))
	}
	lenSum := 0
	for _, c := range chains {
		if c.ID < 1 || c.ID > 50 {
			t.Errorf("chain ID %d out of range", c.ID)
		}
		if c.BandwidthGbps <= 0 || c.BandwidthGbps > 60 {
			t.Errorf("bandwidth %v outside (0, 60]", c.BandwidthGbps)
		}
		lenSum += c.Len()
		for _, b := range c.NFs {
			if b.Type < 1 || b.Type > nf.TypeCount {
				t.Errorf("type %d out of range", b.Type)
			}
			if b.Rules < 100 || b.Rules > 2100 {
				t.Errorf("rules %d outside [100, 2100]", b.Rules)
			}
		}
	}
	avg := float64(lenSum) / 50
	if avg < 4 || avg > 6 {
		t.Errorf("average length %v, want ≈5", avg)
	}
}

func TestGenChainsDeterministic(t *testing.T) {
	a := GenChains(rand.New(rand.NewSource(7)), 10, ChainParams{})
	b := GenChains(rand.New(rand.NewSource(7)), 10, ChainParams{})
	for i := range a {
		if a[i].BandwidthGbps != b[i].BandwidthGbps || a[i].Len() != b[i].Len() {
			t.Fatal("same seed produced different datasets")
		}
	}
	c := GenChains(rand.New(rand.NewSource(8)), 10, ChainParams{})
	same := true
	for i := range a {
		if a[i].BandwidthGbps != c[i].BandwidthGbps {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical bandwidths")
	}
}

func TestGenChainsFixedLen(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	chains := GenChainsFixedLen(rng, 15, 8, ChainParams{})
	for _, c := range chains {
		if c.Len() != 8 {
			t.Errorf("chain %d length %d, want 8", c.ID, c.Len())
		}
	}
}

func TestParetoLongTail(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 20000
	sum, over := 0.0, 0
	for i := 0; i < n; i++ {
		v := Pareto(rng, 1.8, 4, 60)
		if v < 4 || v > 60 {
			t.Fatalf("sample %v outside [4, 60]", v)
		}
		sum += v
		if v > 20 {
			over++
		}
	}
	mean := sum / float64(n)
	if mean < 7 || mean < 4 || mean > 12 {
		t.Errorf("mean %v, want ≈9", mean)
	}
	// Long tail: a visible minority of heavy chains.
	frac := float64(over) / float64(n)
	if frac < 0.02 || frac > 0.25 {
		t.Errorf("heavy-tail fraction %v implausible", frac)
	}
}

func TestToSFC(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	chains := GenChains(rng, 3, ChainParams{})
	for _, c := range chains {
		s := ToSFC(rng, c, 50)
		if s.Tenant != uint32(c.ID) || len(s.NFs) != c.Len() {
			t.Fatalf("SFC shape mismatch")
		}
		for j, cfg := range s.NFs {
			if int(cfg.Type) != c.NFs[j].Type {
				t.Errorf("NF %d type mismatch", j)
			}
			if len(cfg.Rules) > 50 {
				t.Errorf("rules not capped: %d", len(cfg.Rules))
			}
			if err := cfg.Validate(); err != nil {
				t.Errorf("NF %d config invalid: %v", j, err)
			}
		}
	}
}

func TestIMCMixShape(t *testing.T) {
	mix := IMCMix()
	rng := rand.New(rand.NewSource(5))
	counts := map[int]int{}
	n := 10000
	for i := 0; i < n; i++ {
		counts[mix.Sample(rng)]++
	}
	small := float64(counts[64]) / float64(n)
	large := float64(counts[1500]) / float64(n)
	if small < 0.35 || small > 0.55 {
		t.Errorf("small fraction %v, want ≈0.45", small)
	}
	if large < 0.25 || large > 0.45 {
		t.Errorf("large fraction %v, want ≈0.35", large)
	}
	if m := mix.MeanWireLen(); m < 300 || m > 900 {
		t.Errorf("mean wire length %v implausible", m)
	}
}

func TestFlowGen(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	vip := packet.IPv4Addr(20, 0, 0, 1)
	g := NewFlowGen(rng, 42, vip, 16)
	seen := map[packet.FiveTuple]bool{}
	for i := 0; i < 200; i++ {
		p := g.Next(256)
		if p.Meta.TenantID != 42 {
			t.Fatalf("tenant = %d", p.Meta.TenantID)
		}
		if p.IPv4.Dst != vip {
			t.Fatalf("dst = %v", p.IPv4.Dst)
		}
		if p.WireLen() != 256 {
			t.Fatalf("wire len = %d", p.WireLen())
		}
		seen[p.FiveTuple()] = true
	}
	if len(seen) < 8 || len(seen) > 16 {
		t.Errorf("distinct flows = %d, want within (8, 16]", len(seen))
	}
}
