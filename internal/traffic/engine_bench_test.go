package traffic

import (
	"fmt"
	"testing"
)

// BenchmarkProcessParallel replays a fixed pre-generated workload through
// the engine at increasing worker counts, each worker over its own switch
// clone. The chain is straight (no recirculation), so packet metadata is
// reset by the pipeline on every pass and Items are safely replayed across
// b.N iterations.
func BenchmarkProcessParallel(b *testing.B) {
	items := genWorkload(1, 4096)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng := Engine{
				Workers: workers,
				New:     func(int) (Processor, error) { v, err := newEngineSwitch(); return v, err },
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Replay(items); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
