package traffic

import (
	"fmt"
	"testing"

	"sfp/internal/nf"
	"sfp/internal/pipeline"
	"sfp/internal/vswitch"
)

// BenchmarkProcessParallel replays a fixed pre-generated workload through
// the engine at increasing worker counts, each worker over its own switch
// clone. The chain is straight (no recirculation), so packet metadata is
// reset by the pipeline on every pass and Items are safely replayed across
// b.N iterations.
func BenchmarkProcessParallel(b *testing.B) {
	items := genWorkload(1, 4096)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng := Engine{
				Workers: workers,
				New:     func(int) (Processor, error) { v, err := newEngineSwitch(); return v, err },
			}
			defer eng.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Replay(items); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// newReplaySwitch builds a firewall → traffic-classifier switch for the pps
// benchmark. Unlike newEngineSwitch's router (whose fwd action decrements
// TTL, mutating packets cumulatively across replays of the same workload),
// this chain is idempotent, so a pre-generated workload can be replayed any
// number of times with identical per-packet behavior.
func newReplaySwitch() (*vswitch.VSwitch, error) {
	v := vswitch.New(pipeline.New(pipeline.DefaultConfig()))
	if _, err := v.InstallPhysicalNF(0, nf.Firewall, 100); err != nil {
		return nil, err
	}
	if _, err := v.InstallPhysicalNF(1, nf.TrafficClassifier, 100); err != nil {
		return nil, err
	}
	sfc := &vswitch.SFC{
		Tenant:        7,
		BandwidthGbps: 10,
		NFs: []*nf.Config{
			{Type: nf.Firewall, Rules: []nf.ConfigRule{{
				Matches: []pipeline.Match{pipeline.Wildcard(), pipeline.Wildcard(), pipeline.Wildcard(), pipeline.Wildcard()},
				Action:  "permit",
			}}},
			{Type: nf.TrafficClassifier, Rules: []nf.ConfigRule{{
				Matches: []pipeline.Match{pipeline.Wildcard(), pipeline.Between(0, 65535)},
				Action:  "set_class", Params: []uint64{2},
			}}},
		},
	}
	if _, err := v.Allocate(sfc); err != nil {
		return nil, err
	}
	return v, nil
}

// BenchmarkReplayPPS is the BENCH_dataplane.json throughput curve: replay a
// fixed workload at increasing worker counts through the batched compiled
// path and report packets per second. The check.sh gate requires workers=4
// to reach ≥ 2.5× workers=1 pps on hosts with ≥ 4 CPUs.
func BenchmarkReplayPPS(b *testing.B) {
	items := genWorkload(2, 4096)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng := Engine{
				Workers: workers,
				New:     func(int) (Processor, error) { v, err := newReplaySwitch(); return v, err },
			}
			defer eng.Close()
			// Warm the pool so processor construction stays off the clock.
			if _, err := eng.Replay(items); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Replay(items); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			pkts := float64(b.N) * float64(len(items))
			b.ReportMetric(pkts/b.Elapsed().Seconds(), "pps")
		})
	}
}
