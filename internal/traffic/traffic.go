// Package traffic synthesizes the workloads of the paper's evaluation
// (§VI-A "Dataset"): SFC candidate sets whose chains pick random NF types,
// whose per-NF rule counts are uniform in [100, 2100], and whose bandwidth
// demands follow a long-tail (Pareto) distribution; plus packet-level
// traffic with the IMC'10-style size mix used for the data-plane
// experiments (Figs. 4 and 5).
package traffic

import (
	"math"
	"math/rand"

	"sfp/internal/model"
	"sfp/internal/nf"
	"sfp/internal/packet"
	"sfp/internal/vswitch"
)

// ChainParams tunes the SFC dataset sampler. Zero values select the paper's
// §VI-C defaults.
type ChainParams struct {
	// NumTypes is I (default nf.TypeCount = 10).
	NumTypes int
	// MeanLen is the average chain length J̄ (default 5).
	MeanLen int
	// RuleMin/RuleMax bound the per-NF rule count (default 100..2100).
	RuleMin, RuleMax int
	// ParetoAlpha/ParetoXm shape the long-tail bandwidth distribution
	// (default α=1.8, x_m=4 → mean ≈ 9 Gbps).
	ParetoAlpha, ParetoXm float64
	// BandwidthCap truncates the tail (default 60 Gbps).
	BandwidthCap float64
}

func (p ChainParams) withDefaults() ChainParams {
	if p.NumTypes == 0 {
		p.NumTypes = nf.TypeCount
	}
	if p.MeanLen == 0 {
		p.MeanLen = 5
	}
	if p.RuleMin == 0 {
		p.RuleMin = 100
	}
	if p.RuleMax == 0 {
		p.RuleMax = 2100
	}
	if p.ParetoAlpha == 0 {
		p.ParetoAlpha = 1.8
	}
	if p.ParetoXm == 0 {
		p.ParetoXm = 4
	}
	if p.BandwidthCap == 0 {
		p.BandwidthCap = 60
	}
	return p
}

// Pareto samples a truncated Pareto(α, x_m) variate — the long-tail
// bandwidth model.
func Pareto(rng *rand.Rand, alpha, xm, cap float64) float64 {
	u := rng.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	v := xm / math.Pow(1-u, 1/alpha)
	if v > cap {
		v = cap
	}
	return v
}

// GenChains samples L SFC candidates for the control-plane experiments.
// Chain IDs are 1..L. Lengths vary ±2 around MeanLen (min 1); each box
// picks a uniform type and a uniform rule count.
func GenChains(rng *rand.Rand, L int, p ChainParams) []*model.Chain {
	p = p.withDefaults()
	chains := make([]*model.Chain, 0, L)
	for l := 0; l < L; l++ {
		J := p.MeanLen + rng.Intn(5) - 2
		if J < 1 {
			J = 1
		}
		c := &model.Chain{
			ID:            l + 1,
			BandwidthGbps: Pareto(rng, p.ParetoAlpha, p.ParetoXm, p.BandwidthCap),
		}
		for j := 0; j < J; j++ {
			c.NFs = append(c.NFs, model.ChainNF{
				Type:  1 + rng.Intn(p.NumTypes),
				Rules: p.RuleMin + rng.Intn(p.RuleMax-p.RuleMin+1),
			})
		}
		chains = append(chains, c)
	}
	return chains
}

// GenChainsFixedLen samples chains of exactly length J (used by the
// recirculation experiment of Fig. 7, which fixes J=8).
func GenChainsFixedLen(rng *rand.Rand, L, J int, p ChainParams) []*model.Chain {
	p = p.withDefaults()
	chains := GenChains(rng, L, p)
	for _, c := range chains {
		for len(c.NFs) > J {
			c.NFs = c.NFs[:J]
		}
		for len(c.NFs) < J {
			c.NFs = append(c.NFs, model.ChainNF{
				Type:  1 + rng.Intn(p.NumTypes),
				Rules: p.RuleMin + rng.Intn(p.RuleMax-p.RuleMin+1),
			})
		}
	}
	return chains
}

// ToSFC expands a model chain into a runnable vswitch SFC with synthesized
// per-NF rule configurations, so data-plane integration tests can install
// exactly the workload the control plane placed. rulesCap bounds the
// materialized rules per NF (the model's F counts can be large; packet
// behaviour needs only a sample).
func ToSFC(rng *rand.Rand, c *model.Chain, rulesCap int) *vswitch.SFC {
	s := &vswitch.SFC{Tenant: uint32(c.ID), BandwidthGbps: c.BandwidthGbps}
	for _, b := range c.NFs {
		n := b.Rules
		if rulesCap > 0 && n > rulesCap {
			n = rulesCap
		}
		s.NFs = append(s.NFs, nf.Synthesize(nf.Type(b.Type), n, rng))
	}
	return s
}

// PacketSizes is the Fig. 4/5 sweep.
var PacketSizes = []int{64, 128, 256, 512, 1024, 1500}

// SizeMix is a packet-size distribution. Weights need not sum to 1.
type SizeMix struct {
	Sizes   []int
	Weights []float64
}

// IMCMix approximates the bimodal data-center mix of Benson et al.
// (IMC'10, the paper's [27]): ≈50% small packets, ≈40% near-MTU, the rest
// spread across middle sizes.
func IMCMix() SizeMix {
	return SizeMix{
		Sizes:   []int{64, 128, 256, 512, 1024, 1500},
		Weights: []float64{0.45, 0.08, 0.04, 0.03, 0.05, 0.35},
	}
}

// Sample draws a packet size from the mix.
func (m SizeMix) Sample(rng *rand.Rand) int {
	total := 0.0
	for _, w := range m.Weights {
		total += w
	}
	r := rng.Float64() * total
	for i, w := range m.Weights {
		if r < w {
			return m.Sizes[i]
		}
		r -= w
	}
	return m.Sizes[len(m.Sizes)-1]
}

// MeanWireLen returns the mix's expected frame size.
func (m SizeMix) MeanWireLen() float64 {
	total, acc := 0.0, 0.0
	for i, w := range m.Weights {
		total += w
		acc += w * float64(m.Sizes[i])
	}
	if total == 0 {
		return 0
	}
	return acc / total
}

// FlowGen produces packets of one tenant's synthetic flows.
type FlowGen struct {
	rng    *rand.Rand
	tenant uint32
	dstVIP uint32
	flows  []packet.FiveTuple
}

// NewFlowGen creates a generator with nFlows distinct five-tuples toward
// the tenant's virtual IP.
func NewFlowGen(rng *rand.Rand, tenant uint32, dstVIP uint32, nFlows int) *FlowGen {
	g := &FlowGen{rng: rng, tenant: tenant, dstVIP: dstVIP}
	for i := 0; i < nFlows; i++ {
		g.flows = append(g.flows, packet.FiveTuple{
			SrcIP:   packet.IPv4Addr(10, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(1+rng.Intn(254))),
			DstIP:   dstVIP,
			Proto:   packet.ProtoTCP,
			SrcPort: uint16(1024 + rng.Intn(60000)),
			DstPort: 80,
		})
	}
	return g
}

// Next produces one packet from a random flow with the given wire length.
func (g *FlowGen) Next(wireLen int) *packet.Packet {
	ft := g.flows[g.rng.Intn(len(g.flows))]
	return packet.NewBuilder().
		WithTenant(g.tenant).
		WithIPv4(ft.SrcIP, ft.DstIP).
		WithTCP(ft.SrcPort, ft.DstPort).
		WithWireLen(wireLen).
		Build()
}
