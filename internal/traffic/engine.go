package traffic

import (
	"fmt"
	"runtime"
	"sync"

	"sfp/internal/packet"
	"sfp/internal/pipeline"
)

// Processor consumes one packet at a simulated timestamp. Both
// *pipeline.Pipeline and *vswitch.VSwitch satisfy it.
type Processor interface {
	Process(p *packet.Packet, nowNs float64) pipeline.Result
}

// BatchCompiler is the optional fast-path interface: a Processor that can
// expose its compiled pipeline lets the engine replay each worker's chunk
// through pipeline.Compiled.ProcessBatch — specialized dispatch plus one
// telemetry flush per chunk instead of per-packet atomics. *vswitch.VSwitch
// implements it; plain Processors fall back to per-packet Process.
type BatchCompiler interface {
	Compiled() *pipeline.Compiled
}

// Item is one packet of a replay workload together with its arrival
// timestamp (an alias of pipeline.Item, the unit of the batched path).
// Workloads are pre-generated (so RNG draw order is independent of worker
// count) and then replayed by the Engine.
type Item = pipeline.Item

// EngineStats aggregates one replay. Per-worker tallies are merged in
// worker-index order, so a run with a fixed worker count is deterministic,
// and a run with Workers=1 is bit-for-bit identical to a plain sequential
// loop over the same items.
type EngineStats struct {
	// Packets is the number of items replayed.
	Packets int
	// Drops counts packets the pipeline dropped.
	Drops int
	// Passes is the maximum pass count observed across packets.
	Passes int
	// LatencySumNs accumulates modeled latency of all packets.
	LatencySumNs float64
	// TablesApplied sums matched tables across packets.
	TablesApplied int
	// Latencies holds per-packet latencies in workload order when
	// Engine.KeepLatencies is set (dropped packets record NaN-free 0 and are
	// excluded from LatencySumNs, matching the sequential reference loop).
	Latencies []float64
}

// MeanLatencyNs returns the average latency over non-dropped packets.
func (s EngineStats) MeanLatencyNs() float64 {
	n := s.Packets - s.Drops
	if n <= 0 {
		return 0
	}
	return s.LatencySumNs / float64(n)
}

// Engine replays a pre-generated workload across N worker goroutines, each
// over its own Processor (typically a per-worker pipeline clone built by
// New), and merges the per-worker statistics. With stateless NFs the same
// Processor may be shared by every worker: lookups are read-only and the
// pipeline counters are atomic.
//
// The engine owns a persistent worker pool: processors, scratch state, and
// chunk buffers are built on the first Replay and reused by every later one,
// so steady-state replay performs no per-call allocation regardless of
// worker count (workers sleep on their wake channels between replays).
// Call Close when done to release the pool; changing Workers between calls
// rebuilds it.
type Engine struct {
	// Workers is the goroutine count; <= 0 selects GOMAXPROCS. Workers=1
	// reproduces a sequential replay exactly.
	Workers int
	// New builds the processor for one worker (called once per worker, in
	// worker order, when the pool is (re)built). Returning the same value
	// for every worker is allowed when processing is stateless.
	New func(worker int) (Processor, error)
	// KeepLatencies records per-packet latencies in EngineStats.Latencies.
	KeepLatencies bool

	// mu serializes Replay/Close and guards the pool state below.
	mu       sync.Mutex
	started  bool
	resolved int // Workers value the pool was built for
	ws       []*workerState
	wg       sync.WaitGroup
	curItems []Item
	keepLat  bool
}

// workerTally is one worker's private accumulator.
type workerTally struct {
	drops      int
	passes     int
	latencySum float64
	applied    int
}

// workerState is one pool worker's persistent state. Each worker owns its
// struct exclusively while running (the engine reads tallies only after
// wg.Wait), and the structs are separately heap-allocated so two workers'
// hot fields never share a cache line.
type workerState struct {
	proc    Processor
	comp    *pipeline.Compiled // non-nil selects the batched path
	scratch *pipeline.Scratch
	wake    chan [2]int       // [lo, hi) chunk bounds; closed on teardown
	out     []pipeline.Result // reused batch result buffer
	lat     []float64         // reused per-packet latency buffer
	tally   workerTally
}

// replayChunk processes items through this worker's processor, accumulating
// into the worker's persistent tally and latency buffers (reset first).
func (w *workerState) replayChunk(items []Item, keepLat bool) {
	w.tally = workerTally{}
	w.lat = w.lat[:0]
	if w.comp != nil {
		// Batched fast path: compiled dispatch, one telemetry flush.
		w.out = w.comp.ProcessBatch(items, w.out[:0], w.scratch)
		for i := range w.out {
			w.record(&w.out[i], keepLat)
		}
		return
	}
	for i := range items {
		res := w.proc.Process(items[i].Pkt, items[i].NowNs)
		w.record(&res, keepLat)
	}
}

func (w *workerState) record(res *pipeline.Result, keepLat bool) {
	t := &w.tally
	if res.Passes > t.passes {
		t.passes = res.Passes
	}
	t.applied += res.TablesApplied
	if res.Dropped {
		t.drops++
		return
	}
	t.latencySum += res.LatencyNs
	if keepLat {
		w.lat = append(w.lat, res.LatencyNs)
	}
}

// runWorker is the pool goroutine body: sleep on the wake channel, replay
// the assigned chunk, signal completion. Exits when the channel closes.
func (e *Engine) runWorker(w *workerState) {
	for rng := range w.wake {
		w.replayChunk(e.curItems[rng[0]:rng[1]], e.keepLat)
		e.wg.Done()
	}
}

// initLocked builds the worker pool: processors first (so a factory error
// leaves nothing running), then one goroutine per worker.
func (e *Engine) initLocked() error {
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	procs := make([]Processor, workers)
	for w := 0; w < workers; w++ {
		proc, err := e.New(w)
		if err != nil {
			return fmt.Errorf("traffic: engine worker %d: %w", w, err)
		}
		procs[w] = proc
	}
	e.ws = make([]*workerState, workers)
	for w := 0; w < workers; w++ {
		ws := &workerState{proc: procs[w], wake: make(chan [2]int, 1)}
		if bc, ok := procs[w].(BatchCompiler); ok {
			if c := bc.Compiled(); c != nil {
				ws.comp = c
				ws.scratch = c.NewScratch()
			}
		}
		e.ws[w] = ws
		go e.runWorker(ws)
	}
	e.started = true
	e.resolved = e.Workers
	return nil
}

// teardownLocked stops the pool goroutines and drops their state.
func (e *Engine) teardownLocked() {
	for _, w := range e.ws {
		if w != nil {
			close(w.wake)
		}
	}
	e.ws = nil
	e.started = false
}

// Close releases the engine's worker pool. The engine stays usable: the
// next Replay rebuilds the pool via New.
func (e *Engine) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.teardownLocked()
}

// Replay pushes every item through a worker's processor. Items are split
// into contiguous chunks (worker w replays items[w*n/W : (w+1)*n/W] in
// order), so per-flow packet order is preserved within a chunk and the
// Workers=1 case degenerates to the exact sequential loop. At most
// len(items) workers are woken; idle pool workers keep sleeping.
func (e *Engine) Replay(items []Item) (EngineStats, error) {
	if e.New == nil {
		return EngineStats{}, fmt.Errorf("traffic: engine needs a processor factory")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started && e.resolved != e.Workers {
		e.teardownLocked()
	}
	if !e.started {
		if err := e.initLocked(); err != nil {
			return EngineStats{}, err
		}
	}

	stats := EngineStats{Packets: len(items)}
	if len(items) == 0 {
		return stats, nil
	}
	active := len(e.ws)
	if active > len(items) {
		active = len(items)
	}

	e.curItems = items
	e.keepLat = e.KeepLatencies
	e.wg.Add(active)
	for w := 0; w < active; w++ {
		e.ws[w].wake <- [2]int{len(items) * w / active, len(items) * (w + 1) / active}
	}
	e.wg.Wait()
	e.curItems = nil

	if e.keepLat {
		total := 0
		for w := 0; w < active; w++ {
			total += len(e.ws[w].lat)
		}
		stats.Latencies = make([]float64, 0, total)
	}
	for w := 0; w < active; w++ {
		t := &e.ws[w].tally
		stats.Drops += t.drops
		if t.passes > stats.Passes {
			stats.Passes = t.passes
		}
		stats.LatencySumNs += t.latencySum
		stats.TablesApplied += t.applied
		if e.keepLat {
			stats.Latencies = append(stats.Latencies, e.ws[w].lat...)
		}
	}
	return stats, nil
}

// GenItems draws n packets of the given wire size from the generator with
// arrival timestamps spaced spacingNs apart — the workload shape of the
// Fig. 4/5 replay loops. RNG draws happen here, once, in generation order,
// so the resulting workload is identical no matter how many workers later
// replay it.
func GenItems(gen *FlowGen, n, size int, spacingNs float64) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{Pkt: gen.Next(size), NowNs: float64(i) * spacingNs}
	}
	return items
}
