package traffic

import (
	"fmt"
	"runtime"
	"sync"

	"sfp/internal/packet"
	"sfp/internal/pipeline"
)

// Processor consumes one packet at a simulated timestamp. Both
// *pipeline.Pipeline and *vswitch.VSwitch satisfy it.
type Processor interface {
	Process(p *packet.Packet, nowNs float64) pipeline.Result
}

// Item is one packet of a replay workload together with its arrival
// timestamp. Workloads are pre-generated (so RNG draw order is independent
// of worker count) and then replayed by the Engine.
type Item struct {
	Pkt   *packet.Packet
	NowNs float64
}

// EngineStats aggregates one replay. Per-worker tallies are merged in
// worker-index order, so a run with a fixed worker count is deterministic,
// and a run with Workers=1 is bit-for-bit identical to a plain sequential
// loop over the same items.
type EngineStats struct {
	// Packets is the number of items replayed.
	Packets int
	// Drops counts packets the pipeline dropped.
	Drops int
	// Passes is the maximum pass count observed across packets.
	Passes int
	// LatencySumNs accumulates modeled latency of all packets.
	LatencySumNs float64
	// TablesApplied sums matched tables across packets.
	TablesApplied int
	// Latencies holds per-packet latencies in workload order when
	// Engine.KeepLatencies is set (dropped packets record NaN-free 0 and are
	// excluded from LatencySumNs, matching the sequential reference loop).
	Latencies []float64
}

// MeanLatencyNs returns the average latency over non-dropped packets.
func (s EngineStats) MeanLatencyNs() float64 {
	n := s.Packets - s.Drops
	if n <= 0 {
		return 0
	}
	return s.LatencySumNs / float64(n)
}

// Engine replays a pre-generated workload across N worker goroutines, each
// over its own Processor (typically a per-worker pipeline clone built by
// New), and merges the per-worker statistics. With stateless NFs the same
// Processor may be shared by every worker: lookups are read-only and the
// pipeline counters are atomic.
type Engine struct {
	// Workers is the goroutine count; <= 0 selects GOMAXPROCS. Workers=1
	// reproduces a sequential replay exactly.
	Workers int
	// New builds the processor for one worker (called once per worker, in
	// worker order, before any packet is processed). Returning the same
	// value for every worker is allowed when processing is stateless.
	New func(worker int) (Processor, error)
	// KeepLatencies records per-packet latencies in EngineStats.Latencies.
	KeepLatencies bool
}

// workerTally is one worker's private accumulator.
type workerTally struct {
	drops      int
	passes     int
	latencySum float64
	applied    int
	latencies  []float64
}

// Replay pushes every item through a worker's processor. Items are split
// into contiguous chunks (worker w replays items[w*n/W : (w+1)*n/W] in
// order), so per-flow packet order is preserved within a chunk and the
// Workers=1 case degenerates to the exact sequential loop.
func (e *Engine) Replay(items []Item) (EngineStats, error) {
	if e.New == nil {
		return EngineStats{}, fmt.Errorf("traffic: engine needs a processor factory")
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	if workers < 1 {
		workers = 1
	}

	procs := make([]Processor, workers)
	for w := 0; w < workers; w++ {
		proc, err := e.New(w)
		if err != nil {
			return EngineStats{}, fmt.Errorf("traffic: engine worker %d: %w", w, err)
		}
		procs[w] = proc
	}

	tallies := make([]workerTally, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := len(items)*w/workers, len(items)*(w+1)/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			t := &tallies[w]
			if e.KeepLatencies {
				t.latencies = make([]float64, 0, hi-lo)
			}
			for _, it := range items[lo:hi] {
				res := procs[w].Process(it.Pkt, it.NowNs)
				if res.Passes > t.passes {
					t.passes = res.Passes
				}
				t.applied += res.TablesApplied
				if res.Dropped {
					t.drops++
					continue
				}
				t.latencySum += res.LatencyNs
				if e.KeepLatencies {
					t.latencies = append(t.latencies, res.LatencyNs)
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()

	stats := EngineStats{Packets: len(items)}
	for w := range tallies {
		t := &tallies[w]
		stats.Drops += t.drops
		if t.passes > stats.Passes {
			stats.Passes = t.passes
		}
		stats.LatencySumNs += t.latencySum
		stats.TablesApplied += t.applied
		if e.KeepLatencies {
			stats.Latencies = append(stats.Latencies, t.latencies...)
		}
	}
	return stats, nil
}

// GenItems draws n packets of the given wire size from the generator with
// arrival timestamps spaced spacingNs apart — the workload shape of the
// Fig. 4/5 replay loops. RNG draws happen here, once, in generation order,
// so the resulting workload is identical no matter how many workers later
// replay it.
func GenItems(gen *FlowGen, n, size int, spacingNs float64) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{Pkt: gen.Next(size), NowNs: float64(i) * spacingNs}
	}
	return items
}
