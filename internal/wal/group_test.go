package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// collectRecords reopens dir and returns every recovered record body as a
// string set with counts.
func collectRecords(t *testing.T, dir string) (map[string]int, *Recovery) {
	t.Helper()
	l, rec, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l.Close()
	got := map[string]int{}
	for _, r := range rec.Records {
		got[string(r)]++
	}
	return got, rec
}

// TestGroupCommitConcurrent hammers one log with 8 concurrent committers
// and verifies every record whose AppendCommit returned nil is durable
// exactly once.
func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec := fmt.Sprintf("w%d-%d", w, i)
				if err := l.AppendCommit([]byte(rec)); err != nil {
					t.Errorf("AppendCommit(%s): %v", rec, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, _ := collectRecords(t, dir)
	if len(got) != writers*perWriter {
		t.Fatalf("recovered %d distinct records, want %d", len(got), writers*perWriter)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			rec := fmt.Sprintf("w%d-%d", w, i)
			if got[rec] != 1 {
				t.Fatalf("record %s recovered %d times, want 1", rec, got[rec])
			}
		}
	}
}

// TestCommitBarrier verifies Commit's contract: every record appended
// before the call (by any goroutine) is durable on return, even when a
// concurrent commit already moved it into the shared pending queue.
func TestCommitBarrier(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("b")); err != nil {
		t.Fatal(err)
	}
	// A Commit with nothing newly staged must still wait for a/b.
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := collectRecords(t, dir)
	if got["a"] != 1 || got["b"] != 1 {
		t.Fatalf("records not durable: %v", got)
	}
}

// TestCloseDuringInflightSync closes the log while concurrent committers
// are mid-flight. Every AppendCommit that returned nil before Close must
// be recovered; later calls must fail with the closed error, and nothing
// may deadlock or race.
func TestCloseDuringInflightSync(t *testing.T) {
	dir := t.TempDir()
	l, _, err := OpenOptions(dir, Options{GroupWindow: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	committed := map[string]bool{}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rec := fmt.Sprintf("w%d-%d", w, i)
				if err := l.AppendCommit([]byte(rec)); err != nil {
					return // closed under us — fine
				}
				mu.Lock()
				committed[rec] = true
				mu.Unlock()
			}
		}(w)
	}
	time.Sleep(5 * time.Millisecond)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	close(stop)
	wg.Wait()
	if err := l.AppendCommit([]byte("late")); err == nil {
		t.Fatal("AppendCommit after Close succeeded")
	}
	got, _ := collectRecords(t, dir)
	mu.Lock()
	defer mu.Unlock()
	for rec := range committed {
		if got[rec] != 1 {
			t.Fatalf("record %s committed before Close but recovered %d times", rec, got[rec])
		}
	}
}

// TestPoisonAfterFailedFsync closes the journal file out from under the
// log so the next sync fails, and verifies the failure poisons every
// later operation with the same error.
func TestPoisonAfterFailedFsync(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCommit([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	// Sabotage the fd: the group syncer's next Write/Sync fails.
	l.mu.Lock()
	l.f.Close()
	l.mu.Unlock()
	if err := l.AppendCommit([]byte("doomed")); err == nil {
		t.Fatal("commit on closed fd succeeded")
	}
	if err := l.Append([]byte("later")); err == nil {
		t.Fatal("Append after poison succeeded")
	}
	if err := l.Commit(); err == nil {
		t.Fatal("Commit after poison succeeded")
	}
	if err := l.Rotate([]byte("snap")); err == nil {
		t.Fatal("Rotate after poison succeeded")
	}
	if err := l.Close(); err == nil {
		t.Fatal("Close after poison returned nil, want the poison error")
	}
	// The record committed before the failure is still recovered.
	got, _ := collectRecords(t, dir)
	if got["ok"] != 1 || got["doomed"] != 0 {
		t.Fatalf("recovered %v, want only the pre-poison record", got)
	}
}

// TestRotateCarriesMarkedTail verifies the off-lock snapshot protocol:
// records committed after Mark survive a Rotate whose snapshot predates
// them, by being re-appended into the new generation.
func TestRotateCarriesMarkedTail(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCommit([]byte("pre")); err != nil {
		t.Fatal(err)
	}
	if err := l.Mark(); err != nil {
		t.Fatal(err)
	}
	// These commit while the snapshot (capturing state as of the Mark)
	// is "being serialized".
	if err := l.AppendCommit([]byte("tail-1")); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCommit([]byte("tail-2")); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate([]byte("snap-at-mark")); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCommit([]byte("post")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, rec := collectRecords(t, dir)
	if string(rec.Snapshot) != "snap-at-mark" {
		t.Fatalf("snapshot = %q", rec.Snapshot)
	}
	if got["pre"] != 0 {
		t.Fatal("pre-mark record survived rotation; it is covered by the snapshot")
	}
	for _, want := range []string{"tail-1", "tail-2", "post"} {
		if got[want] != 1 {
			t.Fatalf("record %s recovered %d times, want 1 (got %v)", want, got[want], got)
		}
	}
}

// TestRotateWithoutMarkDropsCommitted keeps the legacy Rotate semantics:
// with no Mark, everything committed before Rotate is superseded by the
// snapshot.
func TestRotateWithoutMarkDropsCommitted(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCommit([]byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate([]byte("snap")); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCommit([]byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, rec := collectRecords(t, dir)
	if string(rec.Snapshot) != "snap" {
		t.Fatalf("snapshot = %q", rec.Snapshot)
	}
	if got["old"] != 0 || got["new"] != 1 {
		t.Fatalf("recovered %v", got)
	}
}

// TestRotateUnderConcurrentCommits rotates while writers keep committing.
// Every record that committed successfully must be recovered exactly once
// afterwards — carried in the tail if it preceded the rotation, appended
// to the new journal if it followed it.
func TestRotateUnderConcurrentCommits(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Mark(); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	committed := map[string]bool{}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rec := fmt.Sprintf("w%d-%d", w, i)
				if err := l.AppendCommit([]byte(rec)); err != nil {
					t.Errorf("AppendCommit: %v", err)
					return
				}
				mu.Lock()
				committed[rec] = true
				mu.Unlock()
			}
		}(w)
	}
	time.Sleep(2 * time.Millisecond)
	if err := l.Rotate([]byte("mid-churn")); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	time.Sleep(2 * time.Millisecond)
	close(stop)
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, rec := collectRecords(t, dir)
	if string(rec.Snapshot) != "mid-churn" {
		t.Fatalf("snapshot = %q", rec.Snapshot)
	}
	mu.Lock()
	defer mu.Unlock()
	for r := range committed {
		if got[r] != 1 {
			t.Fatalf("record %s recovered %d times, want 1", r, got[r])
		}
	}
}

// TestGroupCommitTornTail simulates a crash mid-group-write: a group
// batch is partially on disk. Recovery must keep the intact prefix,
// discard the torn frame, and leave the journal appendable.
func TestGroupCommitTornTail(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// One group batch of three records.
	for _, r := range []string{"g-1", "g-2", "g-3"} {
		if err := l.Append([]byte(r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last frame: the group writer died mid-write.
	path := filepath.Join(dir, walName(0))
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	got, rec := collectRecords(t, dir)
	if !rec.TornTail {
		t.Fatal("torn tail not reported")
	}
	if got["g-1"] != 1 || got["g-2"] != 1 || got["g-3"] != 0 {
		t.Fatalf("recovered %v, want intact prefix g-1,g-2", got)
	}
	// The truncated journal accepts appends again.
	l2, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.AppendCommit([]byte("after")); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ = collectRecords(t, dir)
	if got["g-2"] != 1 || got["after"] != 1 {
		t.Fatalf("post-truncation append lost: %v", got)
	}
}

// benchCommits drives 8 concurrent committers through b.N total commits.
func benchCommits(b *testing.B, opts Options) {
	dir := b.TempDir()
	l, _, err := OpenOptions(dir, opts)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	rec := make([]byte, 64)
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := l.AppendCommit(rec); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCommitSingleton8 is the baseline: every commit pays its own
// fsync, serialized under the log mutex.
func BenchmarkCommitSingleton8(b *testing.B) {
	benchCommits(b, Options{SingletonCommit: true})
}

// BenchmarkCommitGroup8 is the group committer: concurrent commits
// coalesce into shared fsyncs. The accumulation window trades a bounded
// per-commit delay for much deeper batches.
func BenchmarkCommitGroup8(b *testing.B) {
	benchCommits(b, Options{})
}
