// Package wal provides the controller's write-ahead journal: a
// length-prefixed, CRC-checked, fsync-on-commit record log paired with
// generation-numbered snapshots. The controller appends an intent record
// and commits (fsyncs) it *before* touching the southbound, so that after
// a crash the journal is always at least as new as the switch. Torn or
// truncated tail records — the normal residue of a crash mid-write — are
// detected by the CRC/length framing and discarded, never fatal; anything
// before the torn tail is durable and replayed.
//
// Commits are group-committed: a single background fsyncer coalesces the
// batches queued by concurrent Commit callers into one write+fsync, so N
// concurrent committers pay ~1 fsync instead of N. Commit returns only
// once every record appended before the call is durable, so the
// journal-before-southbound ordering the controller relies on is
// unchanged. Options.GroupWindow bounds how long the fsyncer waits to
// accumulate a batch (0 = sync as soon as the previous sync finishes —
// coalescing then comes only from syncs already in flight).
//
// On-disk layout inside the state directory:
//
//	snap-<gen>   snapshot file: magic "SFPSNAP1", then one framed record
//	wal-<gen>    journal of framed records appended since snap-<gen>
//
// Each framed record is [4-byte big-endian length][4-byte CRC-32C of the
// body][body]. Rotate writes snap-<gen+1> atomically (tmp + rename +
// directory fsync) before switching appends to wal-<gen+1> and deleting
// the old generation, so a crash at any point leaves one recoverable
// generation on disk. Mark + Rotate support snapshots serialized off the
// mutation path: records committed after Mark are retained in memory and
// re-appended into wal-<gen+1> (durably, before the snapshot rename makes
// the new generation preferred), so a snapshot capturing state as of the
// Mark loses nothing committed while it was being serialized.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

const (
	snapMagic = "SFPSNAP1"
	// maxRecord bounds a single journal record. Matches the p4rt frame
	// limit; anything larger is treated as corruption.
	maxRecord = 16 << 20
	// maxSnapshot bounds a snapshot record. Snapshots carry the full
	// controller state (every live SFC) and outgrow journal records by
	// orders of magnitude at 100k tenants.
	maxSnapshot = 1 << 30
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var errClosed = errors.New("wal: log is closed")

// Recovery is what Open found on disk: the newest intact snapshot (nil if
// none), the journal records appended after it, and whether a torn tail
// was discarded.
type Recovery struct {
	// Snapshot is the body of the newest valid snapshot, nil if the
	// directory holds no (intact) snapshot.
	Snapshot []byte
	// Records are the journal records after the snapshot, in append
	// order, up to but excluding any torn tail.
	Records [][]byte
	// TornTail reports that a torn/truncated/corrupt tail record was
	// found and discarded during replay.
	TornTail bool
	// Gen is the recovered generation number.
	Gen uint64
}

// Options tunes a Log opened with OpenOptions.
type Options struct {
	// SingletonCommit disables the background fsyncer: every Commit
	// performs its own write+fsync under the log mutex. This is the
	// pre-group-commit behavior, kept as the benchmark baseline.
	SingletonCommit bool
	// GroupWindow, when > 0, is how long the fsyncer waits after waking
	// to accumulate more batches before the single sync. It bounds the
	// extra latency any Commit pays for batching. 0 means sync
	// immediately; coalescing then comes from commits that queue while a
	// previous sync is in flight.
	GroupWindow time.Duration
}

// Log is an open write-ahead journal. Append stages records in memory;
// Commit queues the staged records and blocks until they are durable.
//
// Concurrency: Append/Commit/AppendCommit/Rotate/Mark/Close are safe for
// concurrent use. Staged records are shared — a Commit flushes everything
// staged by anyone, and returns once all records appended before the call
// are durable. Callers needing a multi-record sequence to stay contiguous
// in replay order (the controller's begin/commit transactions) must
// serialize their Append..Commit sequences themselves, as the controller
// already does.
//
// Errors from the underlying write or fsync poison the log: the failed
// Commit and every subsequent operation return the first error, because
// once an fsync fails the kernel may have dropped the dirty pages and no
// later "success" can be trusted.
type Log struct {
	dir  string
	dirf *os.File
	opts Options

	mu   sync.Mutex
	work *sync.Cond // wakes the fsyncer: pending work or shutdown
	done *sync.Cond // wakes waiters: synced advanced, error, rotation done

	f        *os.File
	gen      uint64
	staged   []byte // framed records staged by Append, not yet queued
	pending  []byte // framed records queued for the next group sync
	queued   uint64 // sequence of the newest queued batch
	synced   uint64 // all batches with seq <= synced are durable
	inflight bool   // fsyncer is mid write+sync
	rotating bool   // Rotate owns the files; fsyncer must stall
	marking  bool   // retain committed frames in tail for the next Rotate
	tail     []byte // framed records committed since Mark
	err      error  // first write/sync error; poisons the log
	closing  bool

	syncerDone chan struct{} // closed when the fsyncer goroutine exits
}

// Open opens (creating if needed) the journal in dir with default options
// (group commit enabled) and replays whatever previous state it holds. The
// returned Log appends to the recovered generation's journal; the Recovery
// carries the replayable state.
func Open(dir string) (*Log, *Recovery, error) {
	return OpenOptions(dir, Options{})
}

// OpenOptions is Open with explicit tuning options.
func OpenOptions(dir string, opts Options) (*Log, *Recovery, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	dirf, err := os.Open(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	rec, err := recoverDir(dir)
	if err != nil {
		dirf.Close()
		return nil, nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, walName(rec.Gen)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		dirf.Close()
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	if opts.GroupWindow < 0 {
		opts.GroupWindow = 0
	}
	l := &Log{dir: dir, dirf: dirf, opts: opts, f: f, gen: rec.Gen}
	l.work = sync.NewCond(&l.mu)
	l.done = sync.NewCond(&l.mu)
	if !opts.SingletonCommit {
		l.syncerDone = make(chan struct{})
		go l.syncer()
	}
	return l, rec, nil
}

func walName(gen uint64) string  { return fmt.Sprintf("wal-%016x", gen) }
func snapName(gen uint64) string { return fmt.Sprintf("snap-%016x", gen) }

// recoverDir scans dir for the newest generation with an intact snapshot
// (or generation 0 with no snapshot), replays its journal, and truncates
// any torn tail so subsequent appends extend a clean file.
func recoverDir(dir string) (*Recovery, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var snapGens, walGens []uint64
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "snap-") && !strings.HasSuffix(name, ".tmp"):
			if g, err := strconv.ParseUint(strings.TrimPrefix(name, "snap-"), 16, 64); err == nil {
				snapGens = append(snapGens, g)
			}
		case strings.HasPrefix(name, "wal-"):
			if g, err := strconv.ParseUint(strings.TrimPrefix(name, "wal-"), 16, 64); err == nil {
				walGens = append(walGens, g)
			}
		}
	}
	sort.Slice(snapGens, func(i, j int) bool { return snapGens[i] > snapGens[j] })
	rec := &Recovery{}
	for _, g := range snapGens {
		body, err := readSnapshot(filepath.Join(dir, snapName(g)))
		if err != nil {
			// A corrupt snapshot (torn rename window, bad CRC) is
			// skipped; an older intact generation still recovers.
			rec.TornTail = true
			continue
		}
		rec.Snapshot = body
		rec.Gen = g
		break
	}
	if rec.Snapshot == nil {
		// No usable snapshot: replay the oldest journal from genesis.
		rec.Gen = 0
		if len(walGens) > 0 {
			rec.Gen = walGens[0]
			for _, g := range walGens {
				if g < rec.Gen {
					rec.Gen = g
				}
			}
		}
	}
	records, torn, err := replayJournal(filepath.Join(dir, walName(rec.Gen)))
	if err != nil {
		return nil, err
	}
	rec.Records = records
	rec.TornTail = rec.TornTail || torn
	return rec, nil
}

// readSnapshot validates and returns the body of one snapshot file.
func readSnapshot(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(snapMagic)+8 || string(data[:len(snapMagic)]) != snapMagic {
		return nil, errors.New("wal: bad snapshot header")
	}
	body, rest, err := decodeFrameLimit(data[len(snapMagic):], maxSnapshot)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, errors.New("wal: trailing bytes after snapshot record")
	}
	return body, nil
}

// replayJournal reads every intact record from path. A short, torn, or
// CRC-corrupt tail stops replay; the file is truncated back to the last
// good record so the reopened log appends cleanly. A missing file is an
// empty journal.
func replayJournal(path string) ([][]byte, bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("wal: %w", err)
	}
	var records [][]byte
	good := 0
	rest := data
	for len(rest) > 0 {
		body, next, err := decodeFrame(rest)
		if err != nil {
			// Torn tail: keep what replayed, truncate the rest.
			if terr := os.Truncate(path, int64(good)); terr != nil {
				return nil, true, fmt.Errorf("wal: truncating torn tail: %w", terr)
			}
			return records, true, nil
		}
		records = append(records, body)
		good += len(rest) - len(next)
		rest = next
	}
	return records, false, nil
}

// decodeFrame parses one [len][crc][body] frame, returning the body and
// the remaining bytes.
func decodeFrame(b []byte) (body, rest []byte, err error) {
	return decodeFrameLimit(b, maxRecord)
}

func decodeFrameLimit(b []byte, limit uint32) (body, rest []byte, err error) {
	if len(b) < 8 {
		return nil, nil, io.ErrUnexpectedEOF
	}
	n := binary.BigEndian.Uint32(b)
	if n > limit {
		return nil, nil, fmt.Errorf("wal: record length %d exceeds limit", n)
	}
	sum := binary.BigEndian.Uint32(b[4:])
	if len(b) < 8+int(n) {
		return nil, nil, io.ErrUnexpectedEOF
	}
	body = b[8 : 8+n]
	if crc32.Checksum(body, castagnoli) != sum {
		return nil, nil, errors.New("wal: record CRC mismatch")
	}
	return body, b[8+n:], nil
}

func appendFrame(dst, body []byte) []byte {
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.Checksum(body, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, body...)
}

// Append stages one record. It becomes durable at the next Commit; several
// records staged together commit under a single fsync.
func (l *Log) Append(rec []byte) error {
	if len(rec) > maxRecord {
		return fmt.Errorf("wal: record length %d exceeds limit", len(rec))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil || l.closing {
		return errClosed
	}
	if l.err != nil {
		return l.err
	}
	l.staged = appendFrame(l.staged, rec)
	return nil
}

// Commit queues everything staged and blocks until every record appended
// before the call — by this or any goroutine — is durable. Concurrent
// Commits coalesce: the background fsyncer folds queued batches into one
// write+fsync.
func (l *Log) Commit() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.commitLocked()
}

func (l *Log) commitLocked() error {
	if l.f == nil || l.closing {
		return errClosed
	}
	if l.err != nil {
		return l.err
	}
	if len(l.staged) > 0 {
		l.pending = append(l.pending, l.staged...)
		l.staged = l.staged[:0]
		l.queued++
	}
	seq := l.queued
	if l.synced >= seq {
		return nil
	}
	if l.opts.SingletonCommit {
		return l.flushLocked()
	}
	l.work.Signal()
	for l.err == nil && l.synced < seq && !l.closing {
		l.done.Wait()
	}
	if l.err != nil {
		return l.err
	}
	if l.synced < seq {
		return errClosed
	}
	return nil
}

// flushLocked writes and fsyncs all pending batches while holding the log
// mutex. Singleton-commit mode only.
func (l *Log) flushLocked() error {
	buf := l.pending
	l.pending = nil
	seq := l.queued
	if len(buf) == 0 {
		return nil
	}
	_, werr := l.f.Write(buf)
	if werr == nil {
		werr = l.f.Sync()
	}
	if werr != nil {
		if l.err == nil {
			l.err = fmt.Errorf("wal: %w", werr)
		}
		l.done.Broadcast()
		return l.err
	}
	l.synced = seq
	if l.marking {
		l.tail = append(l.tail, buf...)
	}
	l.done.Broadcast()
	return nil
}

// syncer is the background group committer: it drains the pending queue
// into one write+fsync per wakeup, waking every Commit whose batch the
// sync covered. While a sync is in flight new commits queue up, so the
// next sync covers all of them — that is the coalescing.
func (l *Log) syncer() {
	defer close(l.syncerDone)
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		for !l.closing && (l.rotating || l.err != nil || len(l.pending) == 0) {
			l.work.Wait()
		}
		if l.closing {
			return
		}
		// Bounded accumulation: give commits already runnable a chance
		// to join the batch before paying the sync. A scheduler yield
		// costs microseconds; a skipped fsync saves hundreds. An
		// explicit GroupWindow extends the wait by wall time.
		if w := l.opts.GroupWindow; w > 0 {
			l.mu.Unlock()
			time.Sleep(w)
			l.mu.Lock()
		} else {
			l.mu.Unlock()
			runtime.Gosched()
			runtime.Gosched()
			l.mu.Lock()
		}
		if l.closing || l.rotating || l.err != nil {
			continue
		}
		buf := l.pending
		l.pending = nil
		seq := l.queued
		f := l.f
		l.inflight = true
		l.mu.Unlock()

		_, werr := f.Write(buf)
		if werr == nil {
			werr = f.Sync()
		}

		l.mu.Lock()
		l.inflight = false
		if werr != nil {
			if l.err == nil {
				l.err = fmt.Errorf("wal: %w", werr)
			}
		} else {
			l.synced = seq
			if l.marking {
				l.tail = append(l.tail, buf...)
			}
		}
		l.done.Broadcast()
	}
}

// AppendCommit appends one record and commits it immediately.
func (l *Log) AppendCommit(rec []byte) error {
	if len(rec) > maxRecord {
		return fmt.Errorf("wal: record length %d exceeds limit", len(rec))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil || l.closing {
		return errClosed
	}
	if l.err != nil {
		return l.err
	}
	l.staged = appendFrame(l.staged, rec)
	return l.commitLocked()
}

// Gen returns the current generation number.
func (l *Log) Gen() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gen
}

// Mark starts retaining committed records in memory so a snapshot
// capturing the state as of this call can be serialized and rotated in
// later without losing anything committed in between: Rotate re-appends
// the retained tail into the new generation's journal.
//
// The caller must ensure the captured snapshot reflects exactly the
// commits that completed before Mark (the controller captures its state
// view and calls Mark under the same mutation serialization); a commit
// still in flight at Mark time lands in the tail, not the snapshot.
func (l *Log) Mark() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil || l.closing {
		return errClosed
	}
	if l.err != nil {
		return l.err
	}
	l.marking = true
	l.tail = l.tail[:0]
	return nil
}

// Rotate makes snapshot the new durable baseline: it drains every queued
// commit, writes snap-<gen+1> and a fresh wal-<gen+1> seeded with the
// records committed since Mark (none without a Mark), atomically prefers
// the new generation (tmp + rename + directory fsync), switches appends
// to it, and only then removes the previous generation's files. A crash
// anywhere inside Rotate leaves either the old generation intact or the
// new one fully durable — the snapshot rename happens only after the new
// journal (with the carried tail) is on disk.
//
// Commits issued while Rotate runs queue up and land in the new
// generation's journal. Rotate does not block them from returning any
// longer than the rotation itself.
func (l *Log) Rotate(snapshot []byte) error {
	l.mu.Lock()
	if l.f == nil || l.closing {
		l.mu.Unlock()
		return errClosed
	}
	if l.rotating {
		l.mu.Unlock()
		return errors.New("wal: rotation already in progress")
	}
	// Drain: everything staged or queued so far belongs to the old
	// generation (it is covered by the snapshot, or retained in the
	// tail if a Mark is active).
	if len(l.staged) > 0 {
		l.pending = append(l.pending, l.staged...)
		l.staged = l.staged[:0]
		l.queued++
	}
	if l.opts.SingletonCommit {
		if err := l.flushLocked(); err != nil {
			l.mu.Unlock()
			return err
		}
	} else {
		l.work.Signal()
		for l.err == nil && !l.closing && (len(l.pending) > 0 || l.inflight) {
			l.done.Wait()
		}
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	if l.f == nil || l.closing {
		l.mu.Unlock()
		return errClosed
	}
	// Own the rotation: the fsyncer stalls (commits keep queueing) while
	// the generation files are replaced.
	l.rotating = true
	tail := l.tail
	l.tail = nil
	l.marking = false
	next := l.gen + 1
	l.mu.Unlock()

	nf, err := l.writeGeneration(next, snapshot, tail)

	l.mu.Lock()
	l.rotating = false
	if err != nil {
		// The old generation is still intact and current; the log
		// stays usable. Wake the fsyncer and any drain waiters.
		l.work.Signal()
		l.done.Broadcast()
		l.mu.Unlock()
		return err
	}
	old := l.f
	oldGen := l.gen
	l.f, l.gen = nf, next
	l.work.Signal()
	l.done.Broadcast()
	l.mu.Unlock()

	old.Close()
	// The new generation is durable; the old one is now garbage. Removal
	// is best-effort — leftovers are ignored by recovery, which always
	// prefers the newest intact snapshot.
	os.Remove(filepath.Join(l.dir, walName(oldGen)))
	os.Remove(filepath.Join(l.dir, snapName(oldGen)))
	return l.dirf.Sync()
}

// writeGeneration writes generation next to disk: the snapshot staged as
// snap-<next>.tmp, the new journal wal-<next> seeded with the carried
// tail, then the rename that makes the generation preferred. The journal
// is durable *before* the rename — once recovery can see snap-<next>, the
// tail records it needs are guaranteed to be there.
func (l *Log) writeGeneration(next uint64, snapshot, tail []byte) (*os.File, error) {
	tmp := filepath.Join(l.dir, snapName(next)+".tmp")
	buf := appendFrame(append(make([]byte, 0, len(snapMagic)+8+len(snapshot)), snapMagic...), snapshot)
	sf, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if _, err := sf.Write(buf); err != nil {
		sf.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := sf.Sync(); err != nil {
		sf.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := sf.Close(); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	nf, err := os.OpenFile(filepath.Join(l.dir, walName(next)), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if len(tail) > 0 {
		if _, err := nf.Write(tail); err != nil {
			nf.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
	}
	if err := nf.Sync(); err != nil {
		nf.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapName(next))); err != nil {
		nf.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := l.dirf.Sync(); err != nil {
		nf.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	return nf, nil
}

// Close flushes staged records, stops the fsyncer, and closes the
// journal. Commits in flight complete (or observe the poison error)
// before Close returns; operations after Close fail with a closed error.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.f == nil || l.closing {
		l.mu.Unlock()
		return nil
	}
	for l.rotating {
		l.done.Wait()
	}
	if l.f == nil || l.closing {
		l.mu.Unlock()
		return nil
	}
	if len(l.staged) > 0 && l.err == nil {
		l.pending = append(l.pending, l.staged...)
		l.staged = l.staged[:0]
		l.queued++
	}
	var err error
	if l.opts.SingletonCommit {
		if l.err == nil {
			l.flushLocked()
		}
		err = l.err
		l.closing = true
	} else {
		l.work.Signal()
		for l.err == nil && (len(l.pending) > 0 || l.inflight) {
			l.done.Wait()
		}
		err = l.err
		l.closing = true
		l.work.Broadcast()
		l.done.Broadcast()
		l.mu.Unlock()
		<-l.syncerDone
		l.mu.Lock()
	}
	f := l.f
	l.f = nil
	l.mu.Unlock()

	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if cerr := l.dirf.Close(); err == nil {
		err = cerr
	}
	return err
}
