// Package wal provides the controller's write-ahead journal: a
// length-prefixed, CRC-checked, fsync-on-commit record log paired with
// generation-numbered snapshots. The controller appends an intent record
// and commits (fsyncs) it *before* touching the southbound, so that after
// a crash the journal is always at least as new as the switch. Torn or
// truncated tail records — the normal residue of a crash mid-write — are
// detected by the CRC/length framing and discarded, never fatal; anything
// before the torn tail is durable and replayed.
//
// On-disk layout inside the state directory:
//
//	snap-<gen>   snapshot file: magic "SFPSNAP1", then one framed record
//	wal-<gen>    journal of framed records appended since snap-<gen>
//
// Each framed record is [4-byte big-endian length][4-byte CRC-32C of the
// body][body]. Rotate writes snap-<gen+1> atomically (tmp + rename +
// directory fsync) before switching appends to wal-<gen+1> and deleting
// the old generation, so a crash at any point leaves one recoverable
// generation on disk.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const (
	snapMagic = "SFPSNAP1"
	// maxRecord bounds a single journal record. Matches the p4rt frame
	// limit; anything larger is treated as corruption.
	maxRecord = 16 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Recovery is what Open found on disk: the newest intact snapshot (nil if
// none), the journal records appended after it, and whether a torn tail
// was discarded.
type Recovery struct {
	// Snapshot is the body of the newest valid snapshot, nil if the
	// directory holds no (intact) snapshot.
	Snapshot []byte
	// Records are the journal records after the snapshot, in append
	// order, up to but excluding any torn tail.
	Records [][]byte
	// TornTail reports that a torn/truncated/corrupt tail record was
	// found and discarded during replay.
	TornTail bool
	// Gen is the recovered generation number.
	Gen uint64
}

// Log is an open write-ahead journal. Append stages records in memory;
// Commit writes and fsyncs them as one durable unit. Not safe for
// concurrent use; the controller serializes mutations already.
type Log struct {
	dir    string
	dirf   *os.File
	f      *os.File
	gen    uint64
	staged []byte
	buf    []byte
}

// Open opens (creating if needed) the journal in dir and replays whatever
// previous state it holds. The returned Log appends to the recovered
// generation's journal; the Recovery carries the replayable state.
func Open(dir string) (*Log, *Recovery, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	dirf, err := os.Open(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	rec, err := recoverDir(dir)
	if err != nil {
		dirf.Close()
		return nil, nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, walName(rec.Gen)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		dirf.Close()
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	return &Log{dir: dir, dirf: dirf, f: f, gen: rec.Gen}, rec, nil
}

func walName(gen uint64) string  { return fmt.Sprintf("wal-%016x", gen) }
func snapName(gen uint64) string { return fmt.Sprintf("snap-%016x", gen) }

// recoverDir scans dir for the newest generation with an intact snapshot
// (or generation 0 with no snapshot), replays its journal, and truncates
// any torn tail so subsequent appends extend a clean file.
func recoverDir(dir string) (*Recovery, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var snapGens, walGens []uint64
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "snap-") && !strings.HasSuffix(name, ".tmp"):
			if g, err := strconv.ParseUint(strings.TrimPrefix(name, "snap-"), 16, 64); err == nil {
				snapGens = append(snapGens, g)
			}
		case strings.HasPrefix(name, "wal-"):
			if g, err := strconv.ParseUint(strings.TrimPrefix(name, "wal-"), 16, 64); err == nil {
				walGens = append(walGens, g)
			}
		}
	}
	sort.Slice(snapGens, func(i, j int) bool { return snapGens[i] > snapGens[j] })
	rec := &Recovery{}
	for _, g := range snapGens {
		body, err := readSnapshot(filepath.Join(dir, snapName(g)))
		if err != nil {
			// A corrupt snapshot (torn rename window, bad CRC) is
			// skipped; an older intact generation still recovers.
			rec.TornTail = true
			continue
		}
		rec.Snapshot = body
		rec.Gen = g
		break
	}
	if rec.Snapshot == nil {
		// No usable snapshot: replay the oldest journal from genesis.
		rec.Gen = 0
		if len(walGens) > 0 {
			rec.Gen = walGens[0]
			for _, g := range walGens {
				if g < rec.Gen {
					rec.Gen = g
				}
			}
		}
	}
	records, torn, err := replayJournal(filepath.Join(dir, walName(rec.Gen)))
	if err != nil {
		return nil, err
	}
	rec.Records = records
	rec.TornTail = rec.TornTail || torn
	return rec, nil
}

// readSnapshot validates and returns the body of one snapshot file.
func readSnapshot(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(snapMagic)+8 || string(data[:len(snapMagic)]) != snapMagic {
		return nil, errors.New("wal: bad snapshot header")
	}
	body, rest, err := decodeFrame(data[len(snapMagic):])
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, errors.New("wal: trailing bytes after snapshot record")
	}
	return body, nil
}

// replayJournal reads every intact record from path. A short, torn, or
// CRC-corrupt tail stops replay; the file is truncated back to the last
// good record so the reopened log appends cleanly. A missing file is an
// empty journal.
func replayJournal(path string) ([][]byte, bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("wal: %w", err)
	}
	var records [][]byte
	good := 0
	rest := data
	for len(rest) > 0 {
		body, next, err := decodeFrame(rest)
		if err != nil {
			// Torn tail: keep what replayed, truncate the rest.
			if terr := os.Truncate(path, int64(good)); terr != nil {
				return nil, true, fmt.Errorf("wal: truncating torn tail: %w", terr)
			}
			return records, true, nil
		}
		records = append(records, body)
		good += len(rest) - len(next)
		rest = next
	}
	return records, false, nil
}

// decodeFrame parses one [len][crc][body] frame, returning the body and
// the remaining bytes.
func decodeFrame(b []byte) (body, rest []byte, err error) {
	if len(b) < 8 {
		return nil, nil, io.ErrUnexpectedEOF
	}
	n := binary.BigEndian.Uint32(b)
	if n > maxRecord {
		return nil, nil, fmt.Errorf("wal: record length %d exceeds limit", n)
	}
	sum := binary.BigEndian.Uint32(b[4:])
	if len(b) < 8+int(n) {
		return nil, nil, io.ErrUnexpectedEOF
	}
	body = b[8 : 8+n]
	if crc32.Checksum(body, castagnoli) != sum {
		return nil, nil, errors.New("wal: record CRC mismatch")
	}
	return body, b[8+n:], nil
}

func appendFrame(dst, body []byte) []byte {
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.Checksum(body, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, body...)
}

// Append stages one record. It becomes durable at the next Commit; several
// records staged together commit under a single fsync.
func (l *Log) Append(rec []byte) error {
	if l.f == nil {
		return errors.New("wal: log is closed")
	}
	if len(rec) > maxRecord {
		return fmt.Errorf("wal: record length %d exceeds limit", len(rec))
	}
	l.staged = appendFrame(l.staged, rec)
	return nil
}

// Commit writes all staged records and fsyncs the journal. On return the
// records survive a crash of the process or the machine.
func (l *Log) Commit() error {
	if l.f == nil {
		return errors.New("wal: log is closed")
	}
	if len(l.staged) == 0 {
		return nil
	}
	if _, err := l.f.Write(l.staged); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.staged = l.staged[:0]
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// AppendCommit appends one record and commits it immediately.
func (l *Log) AppendCommit(rec []byte) error {
	if err := l.Append(rec); err != nil {
		return err
	}
	return l.Commit()
}

// Gen returns the current generation number.
func (l *Log) Gen() uint64 { return l.gen }

// Rotate makes snapshot the new durable baseline: it writes snap-<gen+1>
// atomically, fsyncs it and the directory, switches appends to a fresh
// wal-<gen+1>, and only then removes the previous generation's files.
// A crash anywhere inside Rotate leaves either the old generation intact
// or the new one fully durable.
func (l *Log) Rotate(snapshot []byte) error {
	if l.f == nil {
		return errors.New("wal: log is closed")
	}
	if len(l.staged) > 0 {
		if err := l.Commit(); err != nil {
			return err
		}
	}
	next := l.gen + 1
	tmp := filepath.Join(l.dir, snapName(next)+".tmp")
	l.buf = appendFrame(append(l.buf[:0], snapMagic...), snapshot)
	sf, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := sf.Write(l.buf); err != nil {
		sf.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := sf.Sync(); err != nil {
		sf.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := sf.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapName(next))); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.dirf.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	nf, err := os.OpenFile(filepath.Join(l.dir, walName(next)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	old := l.f
	oldGen := l.gen
	l.f, l.gen = nf, next
	old.Close()
	// The new generation is durable; the old one is now garbage. Removal
	// is best-effort — leftovers are ignored by recovery, which always
	// prefers the newest intact snapshot.
	os.Remove(filepath.Join(l.dir, walName(oldGen)))
	os.Remove(filepath.Join(l.dir, snapName(oldGen)))
	return l.dirf.Sync()
}

// Close flushes staged records and closes the journal.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.Commit()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	if cerr := l.dirf.Close(); err == nil {
		err = cerr
	}
	return err
}
