package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func mustOpen(t *testing.T, dir string) (*Log, *Recovery) {
	t.Helper()
	l, rec, err := Open(dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, rec
}

func recordsEqual(got [][]byte, want ...string) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if string(got[i]) != want[i] {
			return false
		}
	}
	return true
}

func TestAppendCommitReplay(t *testing.T) {
	dir := t.TempDir()
	l, rec := mustOpen(t, dir)
	if rec.Snapshot != nil || len(rec.Records) != 0 || rec.TornTail {
		t.Fatalf("fresh dir recovery not empty: %+v", rec)
	}
	if err := l.AppendCommit([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("three")); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec2 := mustOpen(t, dir)
	defer l2.Close()
	if !recordsEqual(rec2.Records, "one", "two", "three") {
		t.Fatalf("replayed records = %q", rec2.Records)
	}
	if rec2.TornTail {
		t.Fatal("unexpected torn tail")
	}
}

func TestRotateAndReplay(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	for i := 0; i < 3; i++ {
		if err := l.AppendCommit([]byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Rotate([]byte("snapshot-state")); err != nil {
		t.Fatal(err)
	}
	if l.Gen() != 1 {
		t.Fatalf("gen after rotate = %d, want 1", l.Gen())
	}
	if err := l.AppendCommit([]byte("post")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Old generation files are gone.
	if _, err := os.Stat(filepath.Join(dir, walName(0))); !os.IsNotExist(err) {
		t.Fatalf("wal-0 still present: %v", err)
	}

	l2, rec := mustOpen(t, dir)
	defer l2.Close()
	if string(rec.Snapshot) != "snapshot-state" {
		t.Fatalf("snapshot = %q", rec.Snapshot)
	}
	if !recordsEqual(rec.Records, "post") {
		t.Fatalf("records = %q", rec.Records)
	}
	if rec.Gen != 1 {
		t.Fatalf("gen = %d, want 1", rec.Gen)
	}
}

// TestCorruption is the satellite table: truncated tail, flipped CRC
// byte, and empty journal must all recover to the last durable state
// rather than fail.
func TestCorruption(t *testing.T) {
	// Each case sets up a directory holding a snapshot ("base") and a
	// journal of two records ("r1", "r2"), then mangles the files.
	setup := func(t *testing.T) string {
		dir := t.TempDir()
		l, _ := mustOpen(t, dir)
		if err := l.AppendCommit([]byte("seed")); err != nil {
			t.Fatal(err)
		}
		if err := l.Rotate([]byte("base")); err != nil {
			t.Fatal(err)
		}
		if err := l.AppendCommit([]byte("r1")); err != nil {
			t.Fatal(err)
		}
		if err := l.AppendCommit([]byte("r2")); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	walPath := func(dir string) string { return filepath.Join(dir, walName(1)) }

	cases := []struct {
		name        string
		mangle      func(t *testing.T, dir string)
		wantRecords []string
		wantTorn    bool
		wantSnap    string
	}{
		{
			name:        "clean",
			mangle:      func(t *testing.T, dir string) {},
			wantRecords: []string{"r1", "r2"},
			wantSnap:    "base",
		},
		{
			name: "truncated tail mid-record",
			mangle: func(t *testing.T, dir string) {
				data, err := os.ReadFile(walPath(dir))
				if err != nil {
					t.Fatal(err)
				}
				// Chop into the last record's body.
				if err := os.WriteFile(walPath(dir), data[:len(data)-1], 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantRecords: []string{"r1"},
			wantTorn:    true,
			wantSnap:    "base",
		},
		{
			name: "truncated tail mid-header",
			mangle: func(t *testing.T, dir string) {
				data, err := os.ReadFile(walPath(dir))
				if err != nil {
					t.Fatal(err)
				}
				// Leave only 3 bytes of the second record's header.
				first := 8 + len("r1")
				if err := os.WriteFile(walPath(dir), data[:first+3], 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantRecords: []string{"r1"},
			wantTorn:    true,
			wantSnap:    "base",
		},
		{
			name: "flipped CRC byte in tail record",
			mangle: func(t *testing.T, dir string) {
				data, err := os.ReadFile(walPath(dir))
				if err != nil {
					t.Fatal(err)
				}
				// Flip a byte inside the second record's stored CRC.
				first := 8 + len("r1")
				data[first+5] ^= 0xff
				if err := os.WriteFile(walPath(dir), data, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantRecords: []string{"r1"},
			wantTorn:    true,
			wantSnap:    "base",
		},
		{
			name: "flipped body byte in first record drops everything after",
			mangle: func(t *testing.T, dir string) {
				data, err := os.ReadFile(walPath(dir))
				if err != nil {
					t.Fatal(err)
				}
				data[8] ^= 0xff // first byte of "r1"
				if err := os.WriteFile(walPath(dir), data, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantRecords: nil,
			wantTorn:    true,
			wantSnap:    "base",
		},
		{
			name: "empty journal",
			mangle: func(t *testing.T, dir string) {
				if err := os.Truncate(walPath(dir), 0); err != nil {
					t.Fatal(err)
				}
			},
			wantRecords: nil,
			wantSnap:    "base",
		},
		{
			name: "missing journal",
			mangle: func(t *testing.T, dir string) {
				if err := os.Remove(walPath(dir)); err != nil {
					t.Fatal(err)
				}
			},
			wantRecords: nil,
			wantSnap:    "base",
		},
		{
			name: "corrupt snapshot falls back to older generation",
			mangle: func(t *testing.T, dir string) {
				// Rotate again so gen 2 exists, then corrupt its
				// snapshot; recovery must fall back to gen 1... but
				// rotate deletes gen 1. Simulate the torn-rotate window
				// instead: write a garbage snap-2 alongside gen 1.
				if err := os.WriteFile(filepath.Join(dir, snapName(2)), []byte("garbage"), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantRecords: []string{"r1", "r2"},
			wantTorn:    true,
			wantSnap:    "base",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := setup(t)
			tc.mangle(t, dir)
			l, rec := mustOpen(t, dir)
			defer l.Close()
			if string(rec.Snapshot) != tc.wantSnap {
				t.Errorf("snapshot = %q, want %q", rec.Snapshot, tc.wantSnap)
			}
			if !recordsEqual(rec.Records, tc.wantRecords...) {
				t.Errorf("records = %q, want %q", rec.Records, tc.wantRecords)
			}
			if rec.TornTail != tc.wantTorn {
				t.Errorf("torn = %v, want %v", rec.TornTail, tc.wantTorn)
			}
			// The reopened log must be appendable after repair and the
			// new record must survive another cycle.
			if err := l.AppendCommit([]byte("after")); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			l2, rec2 := mustOpen(t, dir)
			defer l2.Close()
			want := append(append([]string(nil), tc.wantRecords...), "after")
			if !recordsEqual(rec2.Records, want...) {
				t.Errorf("post-repair records = %q, want %q", rec2.Records, want)
			}
		})
	}
}

func TestTornTailTruncatedOnDisk(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	if err := l.AppendCommit([]byte("keep")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, walName(0))
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Append a torn frame: a header promising more bytes than exist.
	torn := append(append([]byte(nil), clean...), 0, 0, 0, 99, 1, 2, 3, 4, 'x')
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, rec := mustOpen(t, dir)
	defer l2.Close()
	if !rec.TornTail || !recordsEqual(rec.Records, "keep") {
		t.Fatalf("recovery = %+v", rec)
	}
	// The torn bytes must be physically gone so future appends don't
	// interleave with garbage.
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, clean) {
		t.Fatalf("torn tail not truncated: %d bytes, want %d", len(after), len(clean))
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	defer l.Close()
	if err := l.Append(make([]byte, maxRecord+1)); err == nil {
		t.Fatal("oversize record accepted")
	}
}
