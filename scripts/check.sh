#!/usr/bin/env bash
# Tier-1 verification: vet, build, and the full test suite under the race
# detector. CI and pre-merge checks run exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "== all checks passed"
