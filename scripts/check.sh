#!/usr/bin/env bash
# Tier-1 verification: vet, build, and the full test suite under the race
# detector. CI and pre-merge checks run exactly this script.
#
#   scripts/check.sh         vet + build + race tests
#   scripts/check.sh recover durability suite under -race: WAL corruption
#                            tests, codec fuzz corpus replay, and the
#                            kill/restart convergence suite (controller
#                            killed at every crash point, recovered from
#                            the journal, reconciled against the surviving
#                            switch, and required to converge to the
#                            never-crashed state).
#   scripts/check.sh bench   fast-path micro-benchmarks; writes
#                            BENCH_fastpath.json and fails if any hot-path
#                            benchmark allocates, or if the 1024-tenant
#                            lookup is more than 3x the 1-tenant lookup.
#                            Also runs the control-plane solver benchmarks
#                            (BenchmarkSolveIP / BenchmarkSolveApprox),
#                            writes BENCH_solver.json, and fails if either
#                            drops below a 1.5x speedup over the recorded
#                            dense/serial baseline (i.e. a >1.5x regression
#                            against this PR's solver fast path).
#                            Runs the incremental-replan benchmarks, writes
#                            BENCH_replan.json, and fails if a replan at 10k
#                            live tenants exceeds 10x the 1k cost or the
#                            delta path loses its >= 1.5x edge over the
#                            full-rebuild reference at 4k.
#                            Runs the data-plane compiled-pipeline +
#                            multicore replay benchmarks, writes
#                            BENCH_dataplane.json (pps-vs-workers curve),
#                            and fails if the compiled hot path allocates,
#                            is slower than the interpreter, or (on >= 4-CPU
#                            hosts) workers=4 falls below 2.5x workers=1.
#                            Finally runs the full-solve scale-out
#                            benchmarks (Lagrangian decomposition vs
#                            time-capped exact IP), writes
#                            BENCH_fullsolve.json, and fails if the
#                            decomposition's certified gap at 1k candidates
#                            exceeds 3%, it loses its >= 10x speed edge over
#                            the exact attempt at 4k, or its 1k objective
#                            drops below 0.97x the exact incumbent.
#                            Feasibility is enforced inside the benchmarks
#                            themselves (every decomposed placement is
#                            re-verified against the full constraint set).
#                            Runs the lifecycle suite, writes
#                            BENCH_lifecycle.json, and fails if WAL group
#                            commit loses its >= 3x edge over singleton
#                            fsync at 8 writers, the seeded 100k-tenant
#                            churn run misses steady state (asserted inside
#                            the benchmark) or ends below 95k live, p99
#                            arrival-batch latency exceeds 1.5s, or the
#                            load-1 acceptance ratio drops below 0.9.
#                            Trace determinism (same seed => identical
#                            admission trace at any worker count) is
#                            checked first via the lifecycle tests.
#                            Ends with a one-line trajectory summary per
#                            BENCH_*.json against the copy committed at
#                            HEAD.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "recover" ]]; then
    echo "== go test -race (WAL corruption + recovery)"
    go test -race -v ./internal/wal/
    echo "== go test -race (kill/restart convergence suite)"
    go test -race -v -run 'TestRecover|TestJournalFullScenario|TestKillRestartConvergence|TestDepart|TestReconcile' ./internal/core/
    echo "== go test (codec fuzz corpus replay)"
    go test -run 'Fuzz|TestSkipValueDepthGuard' ./internal/p4rt/
    echo "== recovery checks passed"
    exit 0
fi

if [[ "${1:-}" == "bench" ]]; then
    # ---- shared benchmark plumbing ------------------------------------
    # Every gated suite below follows the same discipline: run each
    # benchmark several times, gate on the MINIMUM ns/op — the
    # noise-robust statistic on a shared machine — and pull custom
    # metrics by their unit token (extra metrics shift column positions).

    # run_bench <pkg> <name-regex> [go-test flags...]
    # Runs the named benchmarks (no tests) and echoes the raw output.
    run_bench() {
        local pkg=$1 regex=$2
        shift 2
        go test -run '^$' -bench "$regex" "$@" "$pkg"
    }

    # min_ns <output> <name-regex>
    # Minimum ns/op across all runs of the matching benchmark.
    min_ns() {
        printf '%s\n' "$1" | awk -v n="$2" '
            $1 ~ ("^" n "(-[0-9]+)?$") { if (!m || $3 + 0 < m + 0) m = $3 }
            END { print m }'
    }

    # bench_metric <output> <name-regex> <unit> <min|max>
    # Best value of the custom metric reported with <unit> across all
    # runs of the matching benchmark.
    bench_metric() {
        printf '%s\n' "$1" | awk -v n="$2" -v u="$3" -v mode="$4" '
            function before(unit,  i) { for (i = 2; i <= NF; i++) if ($i == unit) return $(i-1); return "" }
            $1 ~ ("^" n "(-[0-9]+)?$") {
                v = before(u)
                if (v == "") next
                v += 0
                if (!seen || (mode == "max" ? v > best : v < best)) { best = v; seen = 1 }
            }
            END { if (seen) print best }'
    }

    # trajectory <file>
    # One-line drift summary: geometric mean of per-benchmark ns_op
    # ratios in <file> against the copy committed at HEAD. Some files
    # repeat a key across before/after sections; the last occurrence
    # (the measured "after" column) wins on both sides.
    trajectory() {
        local f=$1 old
        if ! old=$(git show "HEAD:$f" 2>/dev/null); then
            echo "   $f: no committed baseline (new in this PR)"
            return
        fi
        printf '%s\n===SPLIT===\n%s\n' "$old" "$(cat "$f")" | awk -v f="$f" '
            /^===SPLIT===$/ { part = 1; next }
            match($0, /"ns_op": *[0-9.eE+-]+/) {
                key = $1; gsub(/[":]/, "", key)
                v = substr($0, RSTART + 8, RLENGTH - 8) + 0
                if (part) nw[key] = v; else base[key] = v
            }
            END {
                n = 0; s = 0
                for (k in nw) if (k in base && base[k] > 0 && nw[k] > 0) {
                    s += log(nw[k] / base[k]); n++
                }
                if (n == 0) printf "   %s: no comparable ns_op entries vs HEAD\n", f
                else printf "   %s: geomean ns_op %+.1f%% vs HEAD across %d benchmarks\n", f, (exp(s / n) - 1) * 100, n
            }'
    }

    echo "== go test -bench (fast path)"
    out=$(run_bench ./internal/pipeline/ \
        'BenchmarkLookupTenants|BenchmarkExactLookup|BenchmarkProcess$|BenchmarkProcessCtx|BenchmarkDeleteTenantChurn' \
        -benchmem)
    echo "$out"
    pout=$(run_bench ./internal/traffic/ 'BenchmarkProcessParallel' -benchmem)
    echo "$pout"

    printf '%s\n%s\n' "$out" "$pout" | awk '
        /^Benchmark/ {
            name = $1; sub(/-[0-9]+$/, "", name)
            ns[name] = $3; bytes[name] = $5; allocs[name] = $7
            order[n++] = name
        }
        END {
            printf "{\n"
            printf "  \"date\": \"'"$(date -u +%Y-%m-%dT%H:%M:%SZ)"'\",\n"
            printf "  \"note\": \"before = pre-fastpath baseline (linear scan, per-stage Context allocs); after = tenant-sharded index + pooled Context\",\n"
            printf "  \"before\": {\n"
            printf "    \"BenchmarkLookupTenants1\":    {\"ns_op\": 144.7,   \"allocs_op\": 0},\n"
            printf "    \"BenchmarkLookupTenants64\":   {\"ns_op\": 3030,    \"allocs_op\": 0},\n"
            printf "    \"BenchmarkLookupTenants1024\": {\"ns_op\": 59641,   \"allocs_op\": 0},\n"
            printf "    \"BenchmarkExactLookup\":       {\"ns_op\": 98.68,   \"allocs_op\": 2},\n"
            printf "    \"BenchmarkProcess\":           {\"ns_op\": 3098,    \"allocs_op\": 8},\n"
            printf "    \"BenchmarkDeleteTenantChurn\": {\"ns_op\": 592194,  \"allocs_op\": 6191}\n"
            printf "  },\n"
            printf "  \"after\": {\n"
            for (i = 0; i < n; i++) {
                name = order[i]
                printf "    \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}%s\n", \
                    name, ns[name], bytes[name], allocs[name], (i < n-1 ? "," : "")
            }
            printf "  }\n}\n"
        }' > BENCH_fastpath.json
    echo "== wrote BENCH_fastpath.json"

    # Hot-path benchmarks must not allocate.
    fail=0
    while read -r name allocs; do
        if [[ "$allocs" != "0" ]]; then
            echo "FAIL: $name allocates $allocs allocs/op (want 0)" >&2
            fail=1
        fi
    done < <(printf '%s\n' "$out" | awk '
        /^BenchmarkLookupTenants|^BenchmarkExactLookup|^BenchmarkProcess-|^BenchmarkProcessCtx-/ {
            name = $1; sub(/-[0-9]+$/, "", name); print name, $7
        }')

    # Sharded lookup must be flat in tenant count: 1024 tenants <= 3x 1 tenant.
    read -r t1 t1024 < <(printf '%s\n' "$out" | awk '
        /^BenchmarkLookupTenants1-/    { a = $3 }
        /^BenchmarkLookupTenants1024-/ { b = $3 }
        END { print a, b }')
    if awk -v a="$t1" -v b="$t1024" 'BEGIN { exit !(b > 3 * a) }'; then
        echo "FAIL: LookupTenants1024 ($t1024 ns/op) > 3x LookupTenants1 ($t1 ns/op)" >&2
        fail=1
    fi

    [[ "$fail" == 0 ]] || exit 1
    echo "== bench checks passed (0 allocs/op on hot path, 1024-tenant lookup within 3x of 1-tenant)"

    echo "== go test -bench (control-plane solver)"
    sout=$(run_bench ./internal/placement/ 'BenchmarkSolveIP$|BenchmarkSolveApprox$' \
        -benchtime 2x -count 3)
    echo "$sout"

    # Pre-fast-path baselines (dense simplex, per-trial re-encode, serial
    # sweep), measured on the same Fig. 8-style instances the benchmarks use.
    ip_before=527638836
    ap_before=1944588662
    ip_after=$(min_ns "$sout" 'BenchmarkSolveIP')
    ap_after=$(min_ns "$sout" 'BenchmarkSolveApprox')
    if [[ -z "$ip_after" || -z "$ap_after" ]]; then
        echo "FAIL: solver benchmarks produced no measurements" >&2
        exit 1
    fi

    awk -v ipb="$ip_before" -v ipa="$ip_after" \
        -v apb="$ap_before" -v apa="$ap_after" '
        BEGIN {
            printf "{\n"
            printf "  \"date\": \"'"$(date -u +%Y-%m-%dT%H:%M:%SZ)"'\",\n"
            printf "  \"cpus\": '"$(nproc)"',\n"
            printf "  \"note\": \"before = dense simplex + per-trial re-encode + serial sweep; after = CSC sparse kernels + encode-once RestrictRecirc sweep. Both columns are the Workers=1 serial reference path (min of 3 runs); on a single-CPU host Workers=NumCPU degenerates to the same path, so parallel scaling is exercised by tests, not timed here.\",\n"
            printf "  \"before\": {\n"
            printf "    \"BenchmarkSolveIP\":     {\"ns_op\": %d},\n", ipb
            printf "    \"BenchmarkSolveApprox\": {\"ns_op\": %d}\n", apb
            printf "  },\n"
            printf "  \"after\": {\n"
            printf "    \"BenchmarkSolveIP\":     {\"ns_op\": %d, \"speedup\": %.2f},\n", ipa, ipb/ipa
            printf "    \"BenchmarkSolveApprox\": {\"ns_op\": %d, \"speedup\": %.2f}\n", apa, apb/apa
            printf "  }\n}\n"
        }' > BENCH_solver.json
    echo "== wrote BENCH_solver.json"

    # Gate: each solver benchmark must hold a clear speedup over the
    # dense/serial baseline. The baseline ns/op numbers are fixed (recorded
    # when the fast path landed, nominal speedup ~1.5x), so the threshold
    # leaves margin for host frequency drift between runs: losing the fast
    # path entirely would read ~1.0x, well below the gate.
    sfail=0
    for pair in "SolveIP:$ip_before:$ip_after" "SolveApprox:$ap_before:$ap_after"; do
        IFS=: read -r bname bbefore bafter <<< "$pair"
        if awk -v b="$bbefore" -v a="$bafter" 'BEGIN { exit !(b / a < 1.3) }'; then
            echo "FAIL: Benchmark$bname speedup $(awk -v b="$bbefore" -v a="$bafter" 'BEGIN { printf "%.2f", b/a }')x < 1.3x vs dense/serial baseline" >&2
            sfail=1
        fi
    done
    [[ "$sfail" == 0 ]] || exit 1
    echo "== solver bench checks passed (>=1.3x over dense/serial baseline)"

    echo "== go test -bench (southbound provisioning)"
    pvout=$(run_bench ./internal/p4rt/ 'BenchmarkProvisionSerial$|BenchmarkProvisionBatched$' \
        -benchtime 30x -count 3)
    echo "$pvout"

    # Both paths drive the same loopback-TCP switch daemon; serial issues
    # one synchronous RPC per southbound op, batched uses MsgBatch frames
    # pipelined through Go/Flush. Gate on the minimum of three runs.
    ser_ns=$(min_ns "$pvout" 'BenchmarkProvisionSerial')
    bat_ns=$(min_ns "$pvout" 'BenchmarkProvisionBatched')
    arr_s=$(bench_metric "$pvout" 'BenchmarkProvisionBatched' 'arrivals/s' max)
    sb_s=$(bench_metric "$pvout" 'BenchmarkProvisionBatched' 'sbops/s' max)
    if [[ -z "$ser_ns" || -z "$bat_ns" ]]; then
        echo "FAIL: provisioning benchmarks produced no measurements" >&2
        exit 1
    fi

    awk -v s="$ser_ns" -v b="$bat_ns" -v ar="$arr_s" -v sb="$sb_s" '
        BEGIN {
            printf "{\n"
            printf "  \"date\": \"'"$(date -u +%Y-%m-%dT%H:%M:%SZ)"'\",\n"
            printf "  \"cpus\": '"$(nproc)"',\n"
            printf "  \"note\": \"32 tenant arrivals + departures per iteration over loopback TCP. serial = one synchronous RPC per southbound op; batched = MsgBatch frames of 16 ops pipelined via Go/Flush with the hand-rolled wire codec. Minimum of 3 runs.\",\n"
            printf "  \"serial\":  {\"ns_op\": %d},\n", s
            printf "  \"batched\": {\"ns_op\": %d, \"arrivals_per_s\": %d, \"southbound_ops_per_s\": %d, \"speedup\": %.2f}\n", b, ar, sb, s/b
            printf "}\n"
        }' > BENCH_provision.json
    echo "== wrote BENCH_provision.json"

    # Gate: batched + pipelined provisioning must hold at least 3x the
    # per-op serial throughput on the same host.
    if awk -v s="$ser_ns" -v b="$bat_ns" 'BEGIN { exit !(s / b < 3.0) }'; then
        echo "FAIL: batched provisioning speedup $(awk -v s="$ser_ns" -v b="$bat_ns" 'BEGIN { printf "%.2f", s/b }')x < 3.0x vs per-op serial" >&2
        exit 1
    fi
    echo "== provisioning bench checks passed (>=3x batched over serial)"

    echo "== go test -bench (crash recovery)"
    rout=$(run_bench ./internal/core/ 'BenchmarkRecover1k$|BenchmarkReconcile1k$' \
        -benchtime 5x -count 3)
    echo "$rout"

    # Recovery latency for a 1000-tenant controller: journal replay +
    # planner rebuild (Recover1k), plus cold-restore reconciliation into an
    # empty switch (Reconcile1k). Gate on the minimum of three runs.
    rec_ns=$(min_ns "$rout" 'BenchmarkRecover1k')
    con_ns=$(min_ns "$rout" 'BenchmarkReconcile1k')
    if [[ -z "$rec_ns" || -z "$con_ns" ]]; then
        echo "FAIL: recovery benchmarks produced no measurements" >&2
        exit 1
    fi

    awk -v r="$rec_ns" -v c="$con_ns" '
        BEGIN {
            printf "{\n"
            printf "  \"date\": \"'"$(date -u +%Y-%m-%dT%H:%M:%SZ)"'\",\n"
            printf "  \"cpus\": '"$(nproc)"',\n"
            printf "  \"note\": \"1000-tenant fleet. recover = WAL replay + planner rebuild; reconcile = recover + drift diff + re-install of every placed chain into an empty switch (cold restore). Minimum of 3 runs, 5 iterations each.\",\n"
            printf "  \"recover_1k\":   {\"ns_op\": %d, \"ms\": %.1f},\n", r, r/1e6
            printf "  \"reconcile_1k\": {\"ns_op\": %d, \"ms\": %.1f}\n", c, c/1e6
            printf "}\n"
        }' > BENCH_recovery.json
    echo "== wrote BENCH_recovery.json"

    # Gate: recovering a 1000-tenant controller must stay under 1 second —
    # the journal replay path must never become a restart bottleneck.
    if awk -v r="$rec_ns" 'BEGIN { exit !(r > 1e9) }'; then
        echo "FAIL: Recover1k took $(awk -v r="$rec_ns" 'BEGIN { printf "%.2f", r/1e9 }')s (gate: < 1s)" >&2
        exit 1
    fi
    echo "== recovery bench checks passed (1k-tenant recover < 1s)"

    echo "== go test -bench (incremental replan: delta vs full rebuild)"
    dout=$(run_bench ./internal/placement/ 'BenchmarkReplanDelta1k$|BenchmarkReplanDelta4k$|BenchmarkReplanDelta10k$' \
        -benchtime 3x -count 3)
    echo "$dout"
    # The full-rebuild reference re-encodes every tenant per replan, so it is
    # orders of magnitude slower — one pass each is plenty for the gate.
    fout=$(run_bench ./internal/placement/ 'BenchmarkReplanFull1k$' -benchtime 2x -count 2)
    echo "$fout"
    f4out=$(run_bench ./internal/placement/ 'BenchmarkReplanFull4k$' -benchtime 1x -count 1 -timeout 60m)
    echo "$f4out"

    # Minimum ns/op per workload (noise-robust on a shared machine).
    rpall=$(printf '%s\n%s\n%s\n' "$dout" "$fout" "$f4out")
    d1=$(min_ns "$rpall" 'BenchmarkReplanDelta1k')
    d4=$(min_ns "$rpall" 'BenchmarkReplanDelta4k')
    d10=$(min_ns "$rpall" 'BenchmarkReplanDelta10k')
    f1=$(min_ns "$rpall" 'BenchmarkReplanFull1k')
    f4=$(min_ns "$rpall" 'BenchmarkReplanFull4k')
    if [[ -z "$d1" || -z "$d10" || -z "$f1" || -z "$f4" ]]; then
        echo "FAIL: replan benchmarks produced no measurements" >&2
        exit 1
    fi

    awk -v d1="$d1" -v d4="$d4" -v d10="$d10" -v f1="$f1" -v f4="$f4" '
        BEGIN {
            printf "{\n"
            printf "  \"date\": \"'"$(date -u +%Y-%m-%dT%H:%M:%SZ)"'\",\n"
            printf "  \"cpus\": '"$(nproc)"',\n"
            printf "  \"note\": \"one arrive -> replan -> depart cycle per iteration at N live tenants. delta = pinned-tenant-eliminated residual program retained and patched across replans, warm-started root LP; full = Build over every tenant + PinChain per replan (pre-optimization behavior). Minimum across runs.\",\n"
            # %.0f, not %d: the full-rebuild ns/op values exceed 2^31 and
            # %d clamps them to INT32_MAX on this awk.
            printf "  \"delta\": {\n"
            printf "    \"BenchmarkReplanDelta1k\":  {\"ns_op\": %.0f},\n", d1
            printf "    \"BenchmarkReplanDelta4k\":  {\"ns_op\": %.0f},\n", d4
            printf "    \"BenchmarkReplanDelta10k\": {\"ns_op\": %.0f, \"ratio_10k_1k\": %.2f}\n", d10, d10/d1
            printf "  },\n"
            printf "  \"full\": {\n"
            printf "    \"BenchmarkReplanFull1k\": {\"ns_op\": %.0f, \"delta_speedup\": %.1f},\n", f1, f1/d1
            printf "    \"BenchmarkReplanFull4k\": {\"ns_op\": %.0f, \"delta_speedup\": %.1f}\n", f4, f4/d4
            printf "  }\n}\n"
        }' > BENCH_replan.json
    echo "== wrote BENCH_replan.json"

    rfail=0
    # Gate (a): incremental replan cost must scale with the waiting set, not
    # the live-tenant count — 10k live tenants within 10x of 1k.
    if awk -v a="$d1" -v b="$d10" 'BEGIN { exit !(b > 10 * a) }'; then
        echo "FAIL: ReplanDelta10k ($d10 ns/op) > 10x ReplanDelta1k ($d1 ns/op)" >&2
        rfail=1
    fi
    # Gate (b): the delta path must beat the full rebuild by >= 1.5x at 4k
    # live tenants (in practice the margin is orders of magnitude).
    if awk -v f="$f4" -v d="$d4" 'BEGIN { exit !(f / d < 1.5) }'; then
        echo "FAIL: delta replan at 4k only $(awk -v f="$f4" -v d="$d4" 'BEGIN { printf "%.2f", f/d }')x the full rebuild (gate: >= 1.5x)" >&2
        rfail=1
    fi
    # Gate (c): delta must never lose to full, even at the smallest scale.
    if awk -v f="$f1" -v d="$d1" 'BEGIN { exit !(f < d) }'; then
        echo "FAIL: delta replan at 1k ($d1 ns/op) slower than full rebuild ($f1 ns/op)" >&2
        rfail=1
    fi
    [[ "$rfail" == 0 ]] || exit 1
    echo "== replan bench checks passed (10k within 10x of 1k, delta >= 1.5x full at 4k)"

    echo "== go test -bench (data plane: compiled pipeline + multicore replay)"
    cout=$(run_bench ./internal/pipeline/ \
        'BenchmarkProcess$|BenchmarkProcessCtx$|BenchmarkCompiledProcess$|BenchmarkCompiledProcessCtx$|BenchmarkCompiledBatch$' \
        -benchtime 500ms -count 3 -benchmem)
    echo "$cout"
    rpout=$(run_bench ./internal/traffic/ 'BenchmarkReplayPPS' \
        -benchtime 500ms -count 3 -benchmem)
    echo "$rpout"

    # Minimum-of-3 ns/op for the compiled-vs-interpreter comparison, plus
    # worst-case allocs/op across the compiled benchmarks.
    int_ns=$(min_ns "$cout" 'BenchmarkProcess')
    intc_ns=$(min_ns "$cout" 'BenchmarkProcessCtx')
    comp_ns=$(min_ns "$cout" 'BenchmarkCompiledProcess')
    compc_ns=$(min_ns "$cout" 'BenchmarkCompiledProcessCtx')
    comp_allocs=$(bench_metric "$cout" 'BenchmarkCompiled(Process|ProcessCtx|Batch)' 'allocs/op' max)
    if [[ -z "$int_ns" || -z "$comp_ns" ]]; then
        echo "FAIL: data-plane benchmarks produced no measurements" >&2
        exit 1
    fi

    # pps-vs-workers curve: best of 3 per worker count, worst-case allocs.
    curve=$(printf '%s\n' "$rpout" | awk '
        function before(unit,  i) { for (i = 2; i <= NF; i++) if ($i == unit) return $(i-1); return "" }
        $1 ~ /^BenchmarkReplayPPS\/workers=/ {
            w = $1; sub(/^BenchmarkReplayPPS\/workers=/, "", w); sub(/-[0-9]+$/, "", w)
            p = before("pps"); al = before("allocs/op")
            if (!(w in pps) || p + 0 > pps[w]) pps[w] = p + 0
            if (!(w in allocs) || al + 0 > allocs[w]) allocs[w] = al + 0
        }
        END { for (w in pps) printf "%s %s %s\n", w, pps[w], allocs[w] }' | sort -n)
    if [[ -z "$curve" ]]; then
        echo "FAIL: replay pps benchmarks produced no measurements" >&2
        exit 1
    fi
    pps1=$(awk '$1 == 1 { print $2 }' <<< "$curve")
    pps4=$(awk '$1 == 4 { print $2 }' <<< "$curve")

    {
        printf '{\n'
        printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
        printf '  "cpus": %s,\n' "$(nproc)"
        printf '  "note": "interpreter = generic stage-loop ProcessCtx; compiled = Pipeline.Compile jump table (cached lookup discipline, flattened key metadata, insert-time action resolution); batch = ProcessBatch with one telemetry flush per 64-packet chunk; replay = traffic.Engine persistent worker pool over the batched compiled path, 4096-packet workload, best of 3 runs. The workers=4 >= 2.5x gate applies only on hosts with >= 4 CPUs.",\n'
        printf '  "interpreter": {\n'
        printf '    "BenchmarkProcess":    {"ns_op": %s},\n' "$int_ns"
        printf '    "BenchmarkProcessCtx": {"ns_op": %s}\n' "$intc_ns"
        printf '  },\n'
        printf '  "compiled": {\n'
        printf '    "BenchmarkCompiledProcess":    {"ns_op": %s, "speedup": %s},\n' \
            "$comp_ns" "$(awk -v i="$int_ns" -v c="$comp_ns" 'BEGIN { printf "%.2f", i/c }')"
        printf '    "BenchmarkCompiledProcessCtx": {"ns_op": %s, "speedup": %s}\n' \
            "$compc_ns" "$(awk -v i="$intc_ns" -v c="$compc_ns" 'BEGIN { printf "%.2f", i/c }')"
        printf '  },\n'
        printf '  "replay_pps_vs_workers": {\n'
        n=$(wc -l <<< "$curve"); i=0
        while read -r w pps al; do
            i=$((i + 1))
            printf '    "workers=%s": {"pps": %s, "allocs_op": %s}%s\n' \
                "$w" "$pps" "$al" "$([[ $i -lt $n ]] && echo ,)"
        done <<< "$curve"
        printf '  }\n}\n'
    } > BENCH_dataplane.json
    echo "== wrote BENCH_dataplane.json"

    dfail=0
    # Gate (a): the compiled hot path and the replay loop must not allocate.
    if [[ "$comp_allocs" != "0" ]]; then
        echo "FAIL: compiled hot path allocates $comp_allocs allocs/op (want 0)" >&2
        dfail=1
    fi
    while read -r w _ al; do
        if [[ "$al" != "0" ]]; then
            echo "FAIL: replay at workers=$w allocates $al allocs/op (want 0)" >&2
            dfail=1
        fi
    done <<< "$curve"

    # Gate (b): real multicore scaling — workers=4 must reach >= 2.5x the
    # workers=1 throughput, on hosts that actually have >= 4 CPUs.
    if [[ "$(nproc)" -ge 4 ]]; then
        if awk -v a="$pps1" -v b="$pps4" 'BEGIN { exit !(b < 2.5 * a) }'; then
            echo "FAIL: workers=4 replay $(awk -v a="$pps1" -v b="$pps4" 'BEGIN { printf "%.2f", b/a }')x workers=1 (gate: >= 2.5x on >= 4-CPU hosts)" >&2
            dfail=1
        fi
    else
        echo "== note: host has $(nproc) CPU(s) < 4; recording pps curve, skipping the 2.5x scaling gate"
    fi

    # Gate (c): compiling must never lose to interpreting (min of 3 each).
    if awk -v i="$int_ns" -v c="$comp_ns" 'BEGIN { exit !(c > i) }'; then
        echo "FAIL: compiled Process ($comp_ns ns/op) slower than interpreter ($int_ns ns/op)" >&2
        dfail=1
    fi

    [[ "$dfail" == 0 ]] || exit 1
    echo "== data-plane bench checks passed (compiled <= interpreter, 0 allocs/op, pps curve recorded)"

    echo "== go test -bench (full solve: Lagrangian decomposition vs exact IP)"
    dcout=$(run_bench ./internal/placement/ 'BenchmarkFullSolveDecomp(250|1k|4k)$' \
        -benchtime 2x -count 3)
    echo "$dcout"
    # The exact references burn their whole 20 s / 30 s wall-clock budget
    # per iteration, so one pass each is plenty for the gate.
    exout=$(run_bench ./internal/placement/ 'BenchmarkFullSolveExact(1k|4k)$' \
        -benchtime 1x -count 1 -timeout 20m)
    echo "$exout"

    dc250=$(min_ns "$dcout" 'BenchmarkFullSolveDecomp250')
    dc1k=$(min_ns "$dcout" 'BenchmarkFullSolveDecomp1k')
    dc4k=$(min_ns "$dcout" 'BenchmarkFullSolveDecomp4k')
    # Worst certified gap across runs — the conservative side of the gate.
    gap1k=$(bench_metric "$dcout" 'BenchmarkFullSolveDecomp1k' 'gap_pct' max)
    dobj1k=$(bench_metric "$dcout" 'BenchmarkFullSolveDecomp1k' 'obj' min)
    ex1k=$(min_ns "$exout" 'BenchmarkFullSolveExact1k')
    ex4k=$(min_ns "$exout" 'BenchmarkFullSolveExact4k')
    eobj1k=$(bench_metric "$exout" 'BenchmarkFullSolveExact1k' 'obj' max)
    eopt1k=$(bench_metric "$exout" 'BenchmarkFullSolveExact1k' 'optimal' max)
    eopt4k=$(bench_metric "$exout" 'BenchmarkFullSolveExact4k' 'optimal' max)
    if [[ -z "$dc1k" || -z "$dc4k" || -z "$ex1k" || -z "$ex4k" ]]; then
        echo "FAIL: full-solve benchmarks produced no measurements" >&2
        exit 1
    fi

    awk -v dc250="$dc250" -v dc1k="$dc1k" -v dc4k="$dc4k" \
        -v gap1k="$gap1k" -v dobj1k="$dobj1k" \
        -v ex1k="$ex1k" -v ex4k="$ex4k" -v eobj1k="$eobj1k" \
        -v eopt1k="$eopt1k" -v eopt4k="$eopt4k" '
        BEGIN {
            printf "{\n"
            printf "  \"date\": \"'"$(date -u +%Y-%m-%dT%H:%M:%SZ)"'\",\n"
            printf "  \"cpus\": '"$(nproc)"',\n"
            printf "  \"note\": \"contended instances (blocks ~ L/4, 6L-Gbps backplane), non-consolidated build. decomposed = Lagrangian dual with parallel per-tenant DP pricing + greedy primal repair; every benchmark iteration re-verifies the repaired placement, so passing runs are feasibility proofs. exact = branch and bound warm-started from greedy under a 20s/30s cap with the decomposed dual bound as BoundCap; optimal=0 means the cap expired first, so exact ns_op understates the true exact cost and the speedup is a lower bound.\",\n"
            printf "  \"decomposed\": {\n"
            printf "    \"BenchmarkFullSolveDecomp250\": {\"ns_op\": %.0f, \"ms\": %.1f},\n", dc250, dc250/1e6
            printf "    \"BenchmarkFullSolveDecomp1k\":  {\"ns_op\": %.0f, \"ms\": %.1f, \"gap_pct\": %.2f, \"obj\": %.0f},\n", dc1k, dc1k/1e6, gap1k, dobj1k
            printf "    \"BenchmarkFullSolveDecomp4k\":  {\"ns_op\": %.0f, \"ms\": %.1f}\n", dc4k, dc4k/1e6
            printf "  },\n"
            printf "  \"exact\": {\n"
            printf "    \"BenchmarkFullSolveExact1k\": {\"ns_op\": %.0f, \"s\": %.1f, \"obj\": %.0f, \"optimal\": %d},\n", ex1k, ex1k/1e9, eobj1k, eopt1k
            printf "    \"BenchmarkFullSolveExact4k\": {\"ns_op\": %.0f, \"s\": %.1f, \"optimal\": %d, \"decomp_speedup\": %.0f}\n", ex4k, ex4k/1e9, eopt4k, ex4k/dc4k
            printf "  }\n}\n"
        }' > BENCH_fullsolve.json
    echo "== wrote BENCH_fullsolve.json"

    ffail=0
    # Gate (a): the certified optimality gap at 1k candidates stays tight.
    if awk -v g="$gap1k" 'BEGIN { exit !(g > 3.0) }'; then
        echo "FAIL: decomposed certified gap at 1k is $gap1k% (gate: <= 3%)" >&2
        ffail=1
    fi
    # Gate (b): the decomposition holds a 10x speed edge at 4k — against an
    # exact attempt that only ran to its cap, so the true edge is larger.
    if awk -v e="$ex4k" -v d="$dc4k" 'BEGIN { exit !(e / d < 10) }'; then
        echo "FAIL: decomposed 4k only $(awk -v e="$ex4k" -v d="$dc4k" 'BEGIN { printf "%.1f", e/d }')x the exact attempt (gate: >= 10x)" >&2
        ffail=1
    fi
    # Gate (c): decomposed solution quality at 1k keeps pace with whatever
    # incumbent the capped exact search produced.
    if awk -v d="$dobj1k" -v e="$eobj1k" 'BEGIN { exit !(d < 0.97 * e) }'; then
        echo "FAIL: decomposed 1k objective $dobj1k < 0.97x exact incumbent $eobj1k" >&2
        ffail=1
    fi
    [[ "$ffail" == 0 ]] || exit 1
    echo "== full-solve bench checks passed (gap <= 3% at 1k, >= 10x at 4k, quality >= 0.97x exact)"

    echo "== go test -bench (WAL group commit: 8 concurrent writers)"
    wout=$(run_bench ./internal/wal/ 'BenchmarkCommitSingleton8$|BenchmarkCommitGroup8$' \
        -benchtime 1s -count 3)
    echo "$wout"

    single_ns=$(min_ns "$wout" 'BenchmarkCommitSingleton8')
    group_ns=$(min_ns "$wout" 'BenchmarkCommitGroup8')
    if [[ -z "$single_ns" || -z "$group_ns" ]]; then
        echo "FAIL: group-commit benchmarks produced no measurements" >&2
        exit 1
    fi

    echo "== go test (lifecycle trace determinism)"
    go test -run 'TestTraceDeterminism|TestGenDeterminism' -count 1 ./internal/lifecycle/

    echo "== go test -bench (lifecycle: 100k-tenant continuous churn)"
    lout=$(run_bench ./internal/lifecycle/ 'BenchmarkLifecycleChurn100k$' \
        -benchtime 1x -count 2 -timeout 30m)
    echo "$lout"

    # Steady state is asserted inside the benchmark (it b.Fatals if the mean
    # live population drifts more than 5% off target); the gates below bound
    # the absolute numbers. Best of 2 runs.
    lc_ns=$(min_ns "$lout" 'BenchmarkLifecycleChurn100k')
    lc_live=$(bench_metric "$lout" 'BenchmarkLifecycleChurn100k' 'live' max)
    lc_mean=$(bench_metric "$lout" 'BenchmarkLifecycleChurn100k' 'mean_live' max)
    lc_p99a=$(bench_metric "$lout" 'BenchmarkLifecycleChurn100k' 'p99_arrive_ms' min)
    lc_p99d=$(bench_metric "$lout" 'BenchmarkLifecycleChurn100k' 'p99_depart_ms' min)
    lc_ratio=$(bench_metric "$lout" 'BenchmarkLifecycleChurn100k' 'accept_ratio' max)
    if [[ -z "$lc_ns" || -z "$lc_live" ]]; then
        echo "FAIL: lifecycle benchmark produced no measurements" >&2
        exit 1
    fi

    awk -v s="$single_ns" -v g="$group_ns" \
        -v ns="$lc_ns" -v live="$lc_live" -v mean="$lc_mean" \
        -v p99a="$lc_p99a" -v p99d="$lc_p99d" -v ratio="$lc_ratio" '
        BEGIN {
            printf "{\n"
            printf "  \"date\": \"'"$(date -u +%Y-%m-%dT%H:%M:%SZ)"'\",\n"
            printf "  \"cpus\": '"$(nproc)"',\n"
            printf "  \"note\": \"group_commit: 8 concurrent committers on one journal, 64-byte records; singleton = one fsync per commit under the log mutex (pre-group-commit behavior), group = background syncer coalescing concurrent commits into shared fsyncs. churn_100k: seeded lifecycle engine fills a durable (group-commit journal, off-lock snapshots) controller to 100k live tenants and sustains Poisson-arrival/exponential-TTL churn at load 1; steady state (mean live within 5%% of target) is asserted inside the benchmark, batched departures via DepartMany. Minima/best across runs.\",\n"
            printf "  \"group_commit\": {\n"
            printf "    \"BenchmarkCommitSingleton8\": {\"ns_op\": %.0f},\n", s
            printf "    \"BenchmarkCommitGroup8\":     {\"ns_op\": %.0f, \"speedup\": %.2f}\n", g, s/g
            printf "  },\n"
            printf "  \"churn_100k\": {\n"
            printf "    \"BenchmarkLifecycleChurn100k\": {\"ns_op\": %.0f, \"s\": %.1f, \"live\": %d, \"mean_live\": %.0f, \"p99_arrive_ms\": %d, \"p99_depart_ms\": %d, \"accept_ratio\": %.3f}\n", ns, ns/1e9, live, mean, p99a, p99d, ratio
            printf "  }\n}\n"
        }' > BENCH_lifecycle.json
    echo "== wrote BENCH_lifecycle.json"

    lfail=0
    # Gate (a): group commit must hold >= 3x the singleton throughput with
    # 8 concurrent writers (in practice the margin is ~6x).
    if awk -v s="$single_ns" -v g="$group_ns" 'BEGIN { exit !(s / g < 3.0) }'; then
        echo "FAIL: group commit speedup $(awk -v s="$single_ns" -v g="$group_ns" 'BEGIN { printf "%.2f", s/g }')x < 3.0x vs singleton at 8 writers" >&2
        lfail=1
    fi
    # Gate (b): the churn run must end with ~100k live tenants.
    if awk -v l="$lc_live" 'BEGIN { exit !(l < 95000) }'; then
        echo "FAIL: churn ended with $lc_live live tenants (gate: >= 95000)" >&2
        lfail=1
    fi
    # Gate (c): arrival batches stay responsive at 100k live — p99 under
    # 1.5 s per batch (measured ~300 ms on the reference host).
    if awk -v p="$lc_p99a" 'BEGIN { exit !(p > 1500) }'; then
        echo "FAIL: p99 arrival-batch latency ${lc_p99a}ms at 100k live (gate: <= 1500ms)" >&2
        lfail=1
    fi
    # Gate (d): at load 1 the over-provisioned switch admits nearly all
    # SLO-feasible arrivals.
    if awk -v r="$lc_ratio" 'BEGIN { exit !(r < 0.9) }'; then
        echo "FAIL: acceptance ratio $lc_ratio at load 1 (gate: >= 0.9)" >&2
        lfail=1
    fi
    [[ "$lfail" == 0 ]] || exit 1
    echo "== lifecycle bench checks passed (group commit >= 3x singleton, 100k live steady state, p99 arrive <= 1.5s)"

    echo "== benchmark trajectory vs committed baselines"
    for f in BENCH_*.json; do
        trajectory "$f"
    done
    exit 0
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "== all checks passed"
