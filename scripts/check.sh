#!/usr/bin/env bash
# Tier-1 verification: vet, build, and the full test suite under the race
# detector. CI and pre-merge checks run exactly this script.
#
#   scripts/check.sh         vet + build + race tests
#   scripts/check.sh recover durability suite under -race: WAL corruption
#                            tests, codec fuzz corpus replay, and the
#                            kill/restart convergence suite (controller
#                            killed at every crash point, recovered from
#                            the journal, reconciled against the surviving
#                            switch, and required to converge to the
#                            never-crashed state).
#   scripts/check.sh bench   fast-path micro-benchmarks; writes
#                            BENCH_fastpath.json and fails if any hot-path
#                            benchmark allocates, or if the 1024-tenant
#                            lookup is more than 3x the 1-tenant lookup.
#                            Also runs the control-plane solver benchmarks
#                            (BenchmarkSolveIP / BenchmarkSolveApprox),
#                            writes BENCH_solver.json, and fails if either
#                            drops below a 1.5x speedup over the recorded
#                            dense/serial baseline (i.e. a >1.5x regression
#                            against this PR's solver fast path).
#                            Runs the incremental-replan benchmarks, writes
#                            BENCH_replan.json, and fails if a replan at 10k
#                            live tenants exceeds 10x the 1k cost or the
#                            delta path loses its >= 1.5x edge over the
#                            full-rebuild reference at 4k.
#                            Finally runs the data-plane compiled-pipeline +
#                            multicore replay benchmarks, writes
#                            BENCH_dataplane.json (pps-vs-workers curve),
#                            and fails if the compiled hot path allocates,
#                            is slower than the interpreter, or (on >= 4-CPU
#                            hosts) workers=4 falls below 2.5x workers=1.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "recover" ]]; then
    echo "== go test -race (WAL corruption + recovery)"
    go test -race -v ./internal/wal/
    echo "== go test -race (kill/restart convergence suite)"
    go test -race -v -run 'TestRecover|TestJournalFullScenario|TestKillRestartConvergence|TestDepart|TestReconcile' ./internal/core/
    echo "== go test (codec fuzz corpus replay)"
    go test -run 'Fuzz|TestSkipValueDepthGuard' ./internal/p4rt/
    echo "== recovery checks passed"
    exit 0
fi

if [[ "${1:-}" == "bench" ]]; then
    echo "== go test -bench (fast path)"
    out=$(go test -run '^$' \
        -bench 'BenchmarkLookupTenants|BenchmarkExactLookup|BenchmarkProcess$|BenchmarkProcessCtx|BenchmarkDeleteTenantChurn' \
        -benchmem ./internal/pipeline/)
    echo "$out"
    pout=$(go test -run '^$' -bench 'BenchmarkProcessParallel' -benchmem ./internal/traffic/)
    echo "$pout"

    printf '%s\n%s\n' "$out" "$pout" | awk '
        /^Benchmark/ {
            name = $1; sub(/-[0-9]+$/, "", name)
            ns[name] = $3; bytes[name] = $5; allocs[name] = $7
            order[n++] = name
        }
        END {
            printf "{\n"
            printf "  \"date\": \"'"$(date -u +%Y-%m-%dT%H:%M:%SZ)"'\",\n"
            printf "  \"note\": \"before = pre-fastpath baseline (linear scan, per-stage Context allocs); after = tenant-sharded index + pooled Context\",\n"
            printf "  \"before\": {\n"
            printf "    \"BenchmarkLookupTenants1\":    {\"ns_op\": 144.7,   \"allocs_op\": 0},\n"
            printf "    \"BenchmarkLookupTenants64\":   {\"ns_op\": 3030,    \"allocs_op\": 0},\n"
            printf "    \"BenchmarkLookupTenants1024\": {\"ns_op\": 59641,   \"allocs_op\": 0},\n"
            printf "    \"BenchmarkExactLookup\":       {\"ns_op\": 98.68,   \"allocs_op\": 2},\n"
            printf "    \"BenchmarkProcess\":           {\"ns_op\": 3098,    \"allocs_op\": 8},\n"
            printf "    \"BenchmarkDeleteTenantChurn\": {\"ns_op\": 592194,  \"allocs_op\": 6191}\n"
            printf "  },\n"
            printf "  \"after\": {\n"
            for (i = 0; i < n; i++) {
                name = order[i]
                printf "    \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}%s\n", \
                    name, ns[name], bytes[name], allocs[name], (i < n-1 ? "," : "")
            }
            printf "  }\n}\n"
        }' > BENCH_fastpath.json
    echo "== wrote BENCH_fastpath.json"

    # Hot-path benchmarks must not allocate.
    fail=0
    while read -r name allocs; do
        if [[ "$allocs" != "0" ]]; then
            echo "FAIL: $name allocates $allocs allocs/op (want 0)" >&2
            fail=1
        fi
    done < <(printf '%s\n' "$out" | awk '
        /^BenchmarkLookupTenants|^BenchmarkExactLookup|^BenchmarkProcess-|^BenchmarkProcessCtx-/ {
            name = $1; sub(/-[0-9]+$/, "", name); print name, $7
        }')

    # Sharded lookup must be flat in tenant count: 1024 tenants <= 3x 1 tenant.
    read -r t1 t1024 < <(printf '%s\n' "$out" | awk '
        /^BenchmarkLookupTenants1-/    { a = $3 }
        /^BenchmarkLookupTenants1024-/ { b = $3 }
        END { print a, b }')
    if awk -v a="$t1" -v b="$t1024" 'BEGIN { exit !(b > 3 * a) }'; then
        echo "FAIL: LookupTenants1024 ($t1024 ns/op) > 3x LookupTenants1 ($t1 ns/op)" >&2
        fail=1
    fi

    [[ "$fail" == 0 ]] || exit 1
    echo "== bench checks passed (0 allocs/op on hot path, 1024-tenant lookup within 3x of 1-tenant)"

    echo "== go test -bench (control-plane solver)"
    sout=$(go test -run '^$' -bench 'BenchmarkSolveIP$|BenchmarkSolveApprox$' \
        -benchtime 2x -count 3 ./internal/placement/)
    echo "$sout"

    # Pre-fast-path baselines (dense simplex, per-trial re-encode, serial
    # sweep), measured on the same Fig. 8-style instances the benchmarks use.
    # The gate compares the MINIMUM of three runs — the noise-robust statistic
    # on a shared machine — against the fixed baseline.
    ip_before=527638836
    ap_before=1944588662
    read -r ip_after ap_after < <(printf '%s\n' "$sout" | awk '
        $1 ~ /^BenchmarkSolveIP(-[0-9]+)?$/     { if (!a || $3 < a) a = $3 }
        $1 ~ /^BenchmarkSolveApprox(-[0-9]+)?$/ { if (!b || $3 < b) b = $3 }
        END { print a, b }')
    if [[ -z "$ip_after" || -z "$ap_after" ]]; then
        echo "FAIL: solver benchmarks produced no measurements" >&2
        exit 1
    fi

    awk -v ipb="$ip_before" -v ipa="$ip_after" \
        -v apb="$ap_before" -v apa="$ap_after" '
        BEGIN {
            printf "{\n"
            printf "  \"date\": \"'"$(date -u +%Y-%m-%dT%H:%M:%SZ)"'\",\n"
            printf "  \"cpus\": '"$(nproc)"',\n"
            printf "  \"note\": \"before = dense simplex + per-trial re-encode + serial sweep; after = CSC sparse kernels + encode-once RestrictRecirc sweep. Both columns are the Workers=1 serial reference path (min of 3 runs); on a single-CPU host Workers=NumCPU degenerates to the same path, so parallel scaling is exercised by tests, not timed here.\",\n"
            printf "  \"before\": {\n"
            printf "    \"BenchmarkSolveIP\":     {\"ns_op\": %d},\n", ipb
            printf "    \"BenchmarkSolveApprox\": {\"ns_op\": %d}\n", apb
            printf "  },\n"
            printf "  \"after\": {\n"
            printf "    \"BenchmarkSolveIP\":     {\"ns_op\": %d, \"speedup\": %.2f},\n", ipa, ipb/ipa
            printf "    \"BenchmarkSolveApprox\": {\"ns_op\": %d, \"speedup\": %.2f}\n", apa, apb/apa
            printf "  }\n}\n"
        }' > BENCH_solver.json
    echo "== wrote BENCH_solver.json"

    # Gate: each solver benchmark must hold a clear speedup over the
    # dense/serial baseline. The baseline ns/op numbers are fixed (recorded
    # when the fast path landed, nominal speedup ~1.5x), so the threshold
    # leaves margin for host frequency drift between runs: losing the fast
    # path entirely would read ~1.0x, well below the gate.
    sfail=0
    for pair in "SolveIP:$ip_before:$ip_after" "SolveApprox:$ap_before:$ap_after"; do
        IFS=: read -r bname bbefore bafter <<< "$pair"
        if awk -v b="$bbefore" -v a="$bafter" 'BEGIN { exit !(b / a < 1.3) }'; then
            echo "FAIL: Benchmark$bname speedup $(awk -v b="$bbefore" -v a="$bafter" 'BEGIN { printf "%.2f", b/a }')x < 1.3x vs dense/serial baseline" >&2
            sfail=1
        fi
    done
    [[ "$sfail" == 0 ]] || exit 1
    echo "== solver bench checks passed (>=1.3x over dense/serial baseline)"

    echo "== go test -bench (southbound provisioning)"
    pvout=$(go test -run '^$' -bench 'BenchmarkProvisionSerial$|BenchmarkProvisionBatched$' \
        -benchtime 30x -count 3 ./internal/p4rt/)
    echo "$pvout"

    # Both paths drive the same loopback-TCP switch daemon; serial issues
    # one synchronous RPC per southbound op, batched uses MsgBatch frames
    # pipelined through Go/Flush. Gate on the minimum of three runs.
    read -r ser_ns bat_ns arr_s sb_s < <(printf '%s\n' "$pvout" | awk '
        $1 ~ /^BenchmarkProvisionSerial(-[0-9]+)?$/  { if (!s || $3 < s) s = $3 }
        $1 ~ /^BenchmarkProvisionBatched(-[0-9]+)?$/ { if (!b || $3 < b) { b = $3; ar = $5; sb = $7 } }
        END { print s, b, ar, sb }')
    if [[ -z "$ser_ns" || -z "$bat_ns" ]]; then
        echo "FAIL: provisioning benchmarks produced no measurements" >&2
        exit 1
    fi

    awk -v s="$ser_ns" -v b="$bat_ns" -v ar="$arr_s" -v sb="$sb_s" '
        BEGIN {
            printf "{\n"
            printf "  \"date\": \"'"$(date -u +%Y-%m-%dT%H:%M:%SZ)"'\",\n"
            printf "  \"cpus\": '"$(nproc)"',\n"
            printf "  \"note\": \"32 tenant arrivals + departures per iteration over loopback TCP. serial = one synchronous RPC per southbound op; batched = MsgBatch frames of 16 ops pipelined via Go/Flush with the hand-rolled wire codec. Minimum of 3 runs.\",\n"
            printf "  \"serial\":  {\"ns_op\": %d},\n", s
            printf "  \"batched\": {\"ns_op\": %d, \"arrivals_per_s\": %d, \"southbound_ops_per_s\": %d, \"speedup\": %.2f}\n", b, ar, sb, s/b
            printf "}\n"
        }' > BENCH_provision.json
    echo "== wrote BENCH_provision.json"

    # Gate: batched + pipelined provisioning must hold at least 3x the
    # per-op serial throughput on the same host.
    if awk -v s="$ser_ns" -v b="$bat_ns" 'BEGIN { exit !(s / b < 3.0) }'; then
        echo "FAIL: batched provisioning speedup $(awk -v s="$ser_ns" -v b="$bat_ns" 'BEGIN { printf "%.2f", s/b }')x < 3.0x vs per-op serial" >&2
        exit 1
    fi
    echo "== provisioning bench checks passed (>=3x batched over serial)"

    echo "== go test -bench (crash recovery)"
    rout=$(go test -run '^$' -bench 'BenchmarkRecover1k$|BenchmarkReconcile1k$' \
        -benchtime 5x -count 3 ./internal/core/)
    echo "$rout"

    # Recovery latency for a 1000-tenant controller: journal replay +
    # planner rebuild (Recover1k), plus cold-restore reconciliation into an
    # empty switch (Reconcile1k). Gate on the minimum of three runs.
    read -r rec_ns con_ns < <(printf '%s\n' "$rout" | awk '
        $1 ~ /^BenchmarkRecover1k(-[0-9]+)?$/   { if (!r || $3 < r) r = $3 }
        $1 ~ /^BenchmarkReconcile1k(-[0-9]+)?$/ { if (!c || $3 < c) c = $3 }
        END { print r, c }')
    if [[ -z "$rec_ns" || -z "$con_ns" ]]; then
        echo "FAIL: recovery benchmarks produced no measurements" >&2
        exit 1
    fi

    awk -v r="$rec_ns" -v c="$con_ns" '
        BEGIN {
            printf "{\n"
            printf "  \"date\": \"'"$(date -u +%Y-%m-%dT%H:%M:%SZ)"'\",\n"
            printf "  \"cpus\": '"$(nproc)"',\n"
            printf "  \"note\": \"1000-tenant fleet. recover = WAL replay + planner rebuild; reconcile = recover + drift diff + re-install of every placed chain into an empty switch (cold restore). Minimum of 3 runs, 5 iterations each.\",\n"
            printf "  \"recover_1k\":   {\"ns_op\": %d, \"ms\": %.1f},\n", r, r/1e6
            printf "  \"reconcile_1k\": {\"ns_op\": %d, \"ms\": %.1f}\n", c, c/1e6
            printf "}\n"
        }' > BENCH_recovery.json
    echo "== wrote BENCH_recovery.json"

    # Gate: recovering a 1000-tenant controller must stay under 1 second —
    # the journal replay path must never become a restart bottleneck.
    if awk -v r="$rec_ns" 'BEGIN { exit !(r > 1e9) }'; then
        echo "FAIL: Recover1k took $(awk -v r="$rec_ns" 'BEGIN { printf "%.2f", r/1e9 }')s (gate: < 1s)" >&2
        exit 1
    fi
    echo "== recovery bench checks passed (1k-tenant recover < 1s)"

    echo "== go test -bench (incremental replan: delta vs full rebuild)"
    dout=$(go test -run '^$' -bench 'BenchmarkReplanDelta1k$|BenchmarkReplanDelta4k$|BenchmarkReplanDelta10k$' \
        -benchtime 3x -count 3 ./internal/placement/)
    echo "$dout"
    # The full-rebuild reference re-encodes every tenant per replan, so it is
    # orders of magnitude slower — one pass each is plenty for the gate.
    fout=$(go test -run '^$' -bench 'BenchmarkReplanFull1k$' -benchtime 2x -count 2 ./internal/placement/)
    echo "$fout"
    f4out=$(go test -run '^$' -bench 'BenchmarkReplanFull4k$' -benchtime 1x -count 1 -timeout 60m ./internal/placement/)
    echo "$f4out"

    # Minimum ns/op per workload (noise-robust on a shared machine).
    read -r d1 d4 d10 f1 f4 < <(printf '%s\n%s\n%s\n' "$dout" "$fout" "$f4out" | awk '
        $1 ~ /^BenchmarkReplanDelta1k(-[0-9]+)?$/  { if (!a || $3 < a) a = $3 }
        $1 ~ /^BenchmarkReplanDelta4k(-[0-9]+)?$/  { if (!b || $3 < b) b = $3 }
        $1 ~ /^BenchmarkReplanDelta10k(-[0-9]+)?$/ { if (!c || $3 < c) c = $3 }
        $1 ~ /^BenchmarkReplanFull1k(-[0-9]+)?$/   { if (!d || $3 < d) d = $3 }
        $1 ~ /^BenchmarkReplanFull4k(-[0-9]+)?$/   { if (!e || $3 < e) e = $3 }
        END { print a, b, c, d, e }')
    if [[ -z "$d1" || -z "$d10" || -z "$f1" || -z "$f4" ]]; then
        echo "FAIL: replan benchmarks produced no measurements" >&2
        exit 1
    fi

    awk -v d1="$d1" -v d4="$d4" -v d10="$d10" -v f1="$f1" -v f4="$f4" '
        BEGIN {
            printf "{\n"
            printf "  \"date\": \"'"$(date -u +%Y-%m-%dT%H:%M:%SZ)"'\",\n"
            printf "  \"cpus\": '"$(nproc)"',\n"
            printf "  \"note\": \"one arrive -> replan -> depart cycle per iteration at N live tenants. delta = pinned-tenant-eliminated residual program retained and patched across replans, warm-started root LP; full = Build over every tenant + PinChain per replan (pre-optimization behavior). Minimum across runs.\",\n"
            # %.0f, not %d: the full-rebuild ns/op values exceed 2^31 and
            # %d clamps them to INT32_MAX on this awk.
            printf "  \"delta\": {\n"
            printf "    \"BenchmarkReplanDelta1k\":  {\"ns_op\": %.0f},\n", d1
            printf "    \"BenchmarkReplanDelta4k\":  {\"ns_op\": %.0f},\n", d4
            printf "    \"BenchmarkReplanDelta10k\": {\"ns_op\": %.0f, \"ratio_10k_1k\": %.2f}\n", d10, d10/d1
            printf "  },\n"
            printf "  \"full\": {\n"
            printf "    \"BenchmarkReplanFull1k\": {\"ns_op\": %.0f, \"delta_speedup\": %.1f},\n", f1, f1/d1
            printf "    \"BenchmarkReplanFull4k\": {\"ns_op\": %.0f, \"delta_speedup\": %.1f}\n", f4, f4/d4
            printf "  }\n}\n"
        }' > BENCH_replan.json
    echo "== wrote BENCH_replan.json"

    rfail=0
    # Gate (a): incremental replan cost must scale with the waiting set, not
    # the live-tenant count — 10k live tenants within 10x of 1k.
    if awk -v a="$d1" -v b="$d10" 'BEGIN { exit !(b > 10 * a) }'; then
        echo "FAIL: ReplanDelta10k ($d10 ns/op) > 10x ReplanDelta1k ($d1 ns/op)" >&2
        rfail=1
    fi
    # Gate (b): the delta path must beat the full rebuild by >= 1.5x at 4k
    # live tenants (in practice the margin is orders of magnitude).
    if awk -v f="$f4" -v d="$d4" 'BEGIN { exit !(f / d < 1.5) }'; then
        echo "FAIL: delta replan at 4k only $(awk -v f="$f4" -v d="$d4" 'BEGIN { printf "%.2f", f/d }')x the full rebuild (gate: >= 1.5x)" >&2
        rfail=1
    fi
    # Gate (c): delta must never lose to full, even at the smallest scale.
    if awk -v f="$f1" -v d="$d1" 'BEGIN { exit !(f < d) }'; then
        echo "FAIL: delta replan at 1k ($d1 ns/op) slower than full rebuild ($f1 ns/op)" >&2
        rfail=1
    fi
    [[ "$rfail" == 0 ]] || exit 1
    echo "== replan bench checks passed (10k within 10x of 1k, delta >= 1.5x full at 4k)"

    echo "== go test -bench (data plane: compiled pipeline + multicore replay)"
    cout=$(go test -run '^$' \
        -bench 'BenchmarkProcess$|BenchmarkProcessCtx$|BenchmarkCompiledProcess$|BenchmarkCompiledProcessCtx$|BenchmarkCompiledBatch$' \
        -benchtime 500ms -count 3 -benchmem ./internal/pipeline/)
    echo "$cout"
    rpout=$(go test -run '^$' -bench 'BenchmarkReplayPPS' \
        -benchtime 500ms -count 3 -benchmem ./internal/traffic/)
    echo "$rpout"

    # Minimum-of-3 ns/op for the compiled-vs-interpreter comparison, plus
    # worst-case allocs/op per benchmark (fields located by unit token, since
    # custom metrics like pps shift the column positions).
    read -r int_ns intc_ns comp_ns compc_ns comp_allocs < <(printf '%s\n' "$cout" | awk '
        function before(unit,  i) { for (i = 2; i <= NF; i++) if ($i == unit) return $(i-1); return "" }
        $1 ~ /^BenchmarkProcess(-[0-9]+)?$/            { if (!a  || $3 < a)  a  = $3 }
        $1 ~ /^BenchmarkProcessCtx(-[0-9]+)?$/         { if (!ac || $3 < ac) ac = $3 }
        $1 ~ /^BenchmarkCompiledProcess(-[0-9]+)?$/    { if (!b  || $3 < b)  b  = $3 }
        $1 ~ /^BenchmarkCompiledProcessCtx(-[0-9]+)?$/ { if (!bc || $3 < bc) bc = $3 }
        $1 ~ /^BenchmarkCompiled/ { al = before("allocs/op"); if (al > mx) mx = al }
        END { print a, ac, b, bc, mx+0 }')
    if [[ -z "$int_ns" || -z "$comp_ns" ]]; then
        echo "FAIL: data-plane benchmarks produced no measurements" >&2
        exit 1
    fi

    # pps-vs-workers curve: best of 3 per worker count, worst-case allocs.
    curve=$(printf '%s\n' "$rpout" | awk '
        function before(unit,  i) { for (i = 2; i <= NF; i++) if ($i == unit) return $(i-1); return "" }
        $1 ~ /^BenchmarkReplayPPS\/workers=/ {
            w = $1; sub(/^BenchmarkReplayPPS\/workers=/, "", w); sub(/-[0-9]+$/, "", w)
            p = before("pps"); al = before("allocs/op")
            if (!(w in pps) || p + 0 > pps[w]) pps[w] = p + 0
            if (!(w in allocs) || al + 0 > allocs[w]) allocs[w] = al + 0
        }
        END { for (w in pps) printf "%s %s %s\n", w, pps[w], allocs[w] }' | sort -n)
    if [[ -z "$curve" ]]; then
        echo "FAIL: replay pps benchmarks produced no measurements" >&2
        exit 1
    fi
    pps1=$(awk '$1 == 1 { print $2 }' <<< "$curve")
    pps4=$(awk '$1 == 4 { print $2 }' <<< "$curve")

    {
        printf '{\n'
        printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
        printf '  "cpus": %s,\n' "$(nproc)"
        printf '  "note": "interpreter = generic stage-loop ProcessCtx; compiled = Pipeline.Compile jump table (cached lookup discipline, flattened key metadata, insert-time action resolution); batch = ProcessBatch with one telemetry flush per 64-packet chunk; replay = traffic.Engine persistent worker pool over the batched compiled path, 4096-packet workload, best of 3 runs. The workers=4 >= 2.5x gate applies only on hosts with >= 4 CPUs.",\n'
        printf '  "interpreter": {\n'
        printf '    "BenchmarkProcess":    {"ns_op": %s},\n' "$int_ns"
        printf '    "BenchmarkProcessCtx": {"ns_op": %s}\n' "$intc_ns"
        printf '  },\n'
        printf '  "compiled": {\n'
        printf '    "BenchmarkCompiledProcess":    {"ns_op": %s, "speedup": %s},\n' \
            "$comp_ns" "$(awk -v i="$int_ns" -v c="$comp_ns" 'BEGIN { printf "%.2f", i/c }')"
        printf '    "BenchmarkCompiledProcessCtx": {"ns_op": %s, "speedup": %s}\n' \
            "$compc_ns" "$(awk -v i="$intc_ns" -v c="$compc_ns" 'BEGIN { printf "%.2f", i/c }')"
        printf '  },\n'
        printf '  "replay_pps_vs_workers": {\n'
        n=$(wc -l <<< "$curve"); i=0
        while read -r w pps al; do
            i=$((i + 1))
            printf '    "workers=%s": {"pps": %s, "allocs_op": %s}%s\n' \
                "$w" "$pps" "$al" "$([[ $i -lt $n ]] && echo ,)"
        done <<< "$curve"
        printf '  }\n}\n'
    } > BENCH_dataplane.json
    echo "== wrote BENCH_dataplane.json"

    dfail=0
    # Gate (a): the compiled hot path and the replay loop must not allocate.
    if [[ "$comp_allocs" != "0" ]]; then
        echo "FAIL: compiled hot path allocates $comp_allocs allocs/op (want 0)" >&2
        dfail=1
    fi
    while read -r w _ al; do
        if [[ "$al" != "0" ]]; then
            echo "FAIL: replay at workers=$w allocates $al allocs/op (want 0)" >&2
            dfail=1
        fi
    done <<< "$curve"

    # Gate (b): real multicore scaling — workers=4 must reach >= 2.5x the
    # workers=1 throughput, on hosts that actually have >= 4 CPUs.
    if [[ "$(nproc)" -ge 4 ]]; then
        if awk -v a="$pps1" -v b="$pps4" 'BEGIN { exit !(b < 2.5 * a) }'; then
            echo "FAIL: workers=4 replay $(awk -v a="$pps1" -v b="$pps4" 'BEGIN { printf "%.2f", b/a }')x workers=1 (gate: >= 2.5x on >= 4-CPU hosts)" >&2
            dfail=1
        fi
    else
        echo "== note: host has $(nproc) CPU(s) < 4; recording pps curve, skipping the 2.5x scaling gate"
    fi

    # Gate (c): compiling must never lose to interpreting (min of 3 each).
    if awk -v i="$int_ns" -v c="$comp_ns" 'BEGIN { exit !(c > i) }'; then
        echo "FAIL: compiled Process ($comp_ns ns/op) slower than interpreter ($int_ns ns/op)" >&2
        dfail=1
    fi

    [[ "$dfail" == 0 ]] || exit 1
    echo "== data-plane bench checks passed (compiled <= interpreter, 0 allocs/op, pps curve recorded)"
    exit 0
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "== all checks passed"
