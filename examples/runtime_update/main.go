// Runtime update (§V-E): tenants churn against a live switch. Departures
// release rules immediately; arrivals are placed incrementally against the
// pinned physical layout; and when the incremental state drifts from the
// global optimum, the controller triggers a full reconfiguration.
//
//	go run ./examples/runtime_update
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sfp/internal/core"
	"sfp/internal/model"
	"sfp/internal/pipeline"
	"sfp/internal/traffic"
	"sfp/internal/vswitch"
)

func main() {
	ctl := core.New(core.Options{
		Pipeline:    pipeline.DefaultConfig(),
		Consolidate: true,
		Recirc:      2,
		Algorithm:   core.AlgoGreedy,
	})

	// Initial batch of eight tenants from the synthetic workload.
	rng := rand.New(rand.NewSource(42))
	chains := traffic.GenChains(rng, 8, traffic.ChainParams{MeanLen: 4, RuleMin: 20, RuleMax: 120})
	var batch []*vswitch.SFC
	for _, c := range chains {
		batch = append(batch, traffic.ToSFC(rng, c, 50))
	}
	m, err := ctl.Provision(batch)
	if err != nil {
		log.Fatal(err)
	}
	report("initial provision", m)

	// Two tenants depart; their switch resources free up instantly.
	placed := ctl.PlacedTenants()
	for _, t := range placed[:min(2, len(placed))] {
		if err := ctl.Depart(t); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tenant %d departed\n", t)
	}
	m, _ = ctl.Metrics()
	report("after departures", m)

	// A new tenant arrives and is placed incrementally — survivors do not
	// move (no rule churn for them).
	newChains := traffic.GenChains(rand.New(rand.NewSource(77)), 1, traffic.ChainParams{MeanLen: 3, RuleMin: 20, RuleMax: 80})
	newChains[0].ID = 500
	newcomer := traffic.ToSFC(rng, newChains[0], 50)
	placedNow, err := ctl.Arrive(newcomer)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tenant %d arrived, placed immediately: %v\n", newcomer.Tenant, placedNow)
	m, _ = ctl.Metrics()
	report("after arrival", m)

	// Periodic check: if the incremental state has drifted more than 10%
	// from the global optimum, rebuild (the §V-E threshold).
	rebuilt, err := ctl.ReconfigureIfStale(0.9)
	if err != nil {
		log.Fatal(err)
	}
	m, _ = ctl.Metrics()
	fmt.Printf("full reconfiguration triggered: %v\n", rebuilt)
	report("final state", m)
}

func report(when string, m model.Metrics) {
	fmt.Printf("[%s] %d tenants deployed, %.0f Gbps offloaded, %.0f Gbps backplane, %.1f blocks/stage\n\n",
		when, m.Deployed, m.ThroughputGbps, m.BackplaneGbps, m.BlockUtil)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
