// Controller: drives a remote switch over the p4rt control API. The
// example starts a switch daemon in-process (the same server cmd/sfpd
// runs), connects a client over TCP, installs physical NFs, allocates a
// tenant SFC, reads back layout and stats, and deallocates.
//
//	go run ./examples/controller
package main

import (
	"fmt"
	"log"
	"time"

	"sfp/internal/nf"
	"sfp/internal/p4rt"
	"sfp/internal/packet"
	"sfp/internal/pipeline"
	"sfp/internal/vswitch"
)

func main() {
	// Switch side (what `sfpd` runs as a standalone process).
	cfg := pipeline.DefaultConfig()
	cfg.Stages = 4
	v := vswitch.New(pipeline.New(cfg))
	srv := p4rt.NewServer(&p4rt.VSwitchTarget{V: v})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("switch daemon listening on", addr)

	// Controller side.
	cli, err := p4rt.Dial(addr, 2*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Ping(); err != nil {
		log.Fatal(err)
	}

	// Boot-time physical NF installation.
	for stage, typ := range []nf.Type{nf.Firewall, nf.TrafficClassifier, nf.LoadBalancer, nf.Router} {
		if err := cli.InstallPhysical(stage, typ, 500); err != nil {
			log.Fatal(err)
		}
	}
	layout, _ := cli.Layout()
	fmt.Println("installed physical layout:", layout)

	// Tenant arrives: allocate its SFC remotely.
	vip := packet.IPv4Addr(20, 0, 0, 1)
	sfc := &vswitch.SFC{
		Tenant: 11, BandwidthGbps: 20,
		NFs: []*nf.Config{
			{Type: nf.Firewall, Rules: []nf.ConfigRule{{
				Matches: []pipeline.Match{pipeline.Wildcard(), pipeline.Wildcard(), pipeline.Wildcard(), pipeline.Wildcard()},
				Action:  "permit",
			}}},
			{Type: nf.LoadBalancer, Rules: []nf.ConfigRule{{
				Matches: []pipeline.Match{pipeline.Eq(uint64(vip)), pipeline.Eq(443)},
				Action:  "dnat", Params: []uint64{uint64(packet.IPv4Addr(10, 1, 1, 1)), 0},
			}}},
			{Type: nf.Router, Rules: []nf.ConfigRule{{
				Matches: []pipeline.Match{pipeline.Prefix(uint64(packet.IPv4Addr(10, 0, 0, 0)), 8)},
				Action:  "fwd", Params: []uint64{9},
			}}},
		},
	}
	placements, passes, err := cli.Allocate(sfc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tenant 11 allocated in %d pass(es):\n", passes)
	for _, pl := range placements {
		fmt.Printf("  NF %d (%v) -> stage %d, pass %d\n", pl.NFIndex, pl.Type, pl.Stage, pl.Pass)
	}

	// Traffic hits the data plane (in a real deployment this is the ASIC;
	// here we poke the simulator directly to show the rules landed).
	p := packet.NewBuilder().WithTenant(11).WithIPv4(1, vip).WithTCP(555, 443).Build()
	v.Process(p, 0)
	fmt.Printf("packet for tenant 11: balanced to %s, egress port %d\n",
		packet.FormatIPv4(p.IPv4.Dst), p.Meta.EgressPort)

	stats, err := cli.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("switch stats: %d tenants, %d entries, %.0f Gbps, %d packets processed\n",
		stats.Tenants, stats.EntriesUsed, stats.BandwidthGbps, stats.Processed)

	// Tenant departs.
	if err := cli.Deallocate(11); err != nil {
		log.Fatal(err)
	}
	stats, _ = cli.Stats()
	fmt.Printf("after departure: %d tenants, %d entries\n", stats.Tenants, stats.EntriesUsed)
}
