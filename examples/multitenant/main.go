// Multitenant: the paper's Fig. 3 toy example, executed. A 3-stage switch
// hosts TC / FW / LB physical NFs; tenant 1's chain matches the physical
// order and runs in one pass, while tenant 2's chain (FW, LB, TC) folds
// into two passes via recirculation. Both tenants share the same physical
// NFs with full isolation: same VIP, different backends.
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"

	"sfp/internal/nf"
	"sfp/internal/packet"
	"sfp/internal/pipeline"
	"sfp/internal/vswitch"
)

func main() {
	cfg := pipeline.DefaultConfig()
	cfg.Stages = 3
	cfg.MaxPasses = 3
	v := vswitch.New(pipeline.New(cfg))

	// Physical pipeline: TC @ stage 0, FW @ stage 1, LB @ stage 2 (Fig. 3).
	for _, in := range []struct {
		stage int
		typ   nf.Type
	}{{0, nf.TrafficClassifier}, {1, nf.Firewall}, {2, nf.LoadBalancer}} {
		if _, err := v.InstallPhysicalNF(in.stage, in.typ, 1000); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("physical pipeline: [TC] [FW] [LB]")

	vip := packet.IPv4Addr(20, 0, 0, 1)
	b1 := packet.IPv4Addr(10, 0, 1, 1)
	b2 := packet.IPv4Addr(10, 0, 2, 2)

	// SFC 1: TC -> FW -> LB (matches physical order).
	sfc1 := &vswitch.SFC{Tenant: 1, BandwidthGbps: 50, NFs: []*nf.Config{
		classAll(4), permitAll(), lbTo(vip, b1),
	}}
	// SFC 2: FW -> LB -> TC (folds into two passes).
	sfc2 := &vswitch.SFC{Tenant: 2, BandwidthGbps: 30, NFs: []*nf.Config{
		permitAll(), lbTo(vip, b2), classAll(7),
	}}

	for _, sfc := range []*vswitch.SFC{sfc1, sfc2} {
		alloc, err := v.Allocate(sfc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tenant %d allocated in %d pass(es):", sfc.Tenant, alloc.Passes)
		for _, pl := range alloc.Placements {
			fmt.Printf("  %v@stage%d/pass%d", pl.Type, pl.Stage, pl.Pass)
		}
		fmt.Println()
	}
	fmt.Printf("backplane load: %.0f Gbps (tenant 2 counts twice for its recirculation)\n\n",
		v.BandwidthUsed())

	// Same five-tuple, different tenants: isolation at work.
	for tenant, wantBackend := range map[uint32]uint32{1: b1, 2: b2} {
		p := packet.NewBuilder().
			WithTenant(tenant).
			WithIPv4(packet.IPv4Addr(172, 16, 0, 5), vip).
			WithTCP(33333, 80).
			Build()
		res := v.Process(p, 0)
		fmt.Printf("tenant %d packet: %d passes, class=%d, balanced to %s (want %s), %.0f ns\n",
			tenant, res.Passes, p.Meta.ClassID,
			packet.FormatIPv4(p.IPv4.Dst), packet.FormatIPv4(wantBackend), res.LatencyNs)
	}

	// Tenant 2 leaves; its rules vanish, tenant 1 is untouched.
	if err := v.Deallocate(2); err != nil {
		log.Fatal(err)
	}
	p := packet.NewBuilder().WithTenant(2).WithIPv4(1, vip).WithTCP(1, 80).Build()
	v.Process(p, 0)
	fmt.Printf("\nafter tenant 2 departs: its packet passes through untouched (dst still VIP: %v)\n",
		p.IPv4.Dst == vip)
	p1 := packet.NewBuilder().WithTenant(1).WithIPv4(1, vip).WithTCP(1, 80).Build()
	v.Process(p1, 0)
	fmt.Printf("tenant 1 still balanced to %s\n", packet.FormatIPv4(p1.IPv4.Dst))
}

func permitAll() *nf.Config {
	return &nf.Config{Type: nf.Firewall, Rules: []nf.ConfigRule{{
		Matches: []pipeline.Match{pipeline.Wildcard(), pipeline.Wildcard(), pipeline.Wildcard(), pipeline.Wildcard()},
		Action:  "permit",
	}}}
}

func classAll(class uint64) *nf.Config {
	return &nf.Config{Type: nf.TrafficClassifier, Rules: []nf.ConfigRule{{
		Matches: []pipeline.Match{pipeline.Wildcard(), pipeline.Between(0, 65535)},
		Action:  "set_class", Params: []uint64{class},
	}}}
}

func lbTo(vip, backend uint32) *nf.Config {
	return &nf.Config{Type: nf.LoadBalancer, Rules: []nf.ConfigRule{{
		Matches: []pipeline.Match{pipeline.Eq(uint64(vip)), pipeline.Eq(80)},
		Action:  "dnat", Params: []uint64{uint64(backend), 0},
	}}}
}
