// Quickstart: provision three tenant SFCs on a simulated programmable
// switch with the SFP controller, then push packets through the data plane
// and watch each tenant's chain apply.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sfp/internal/core"
	"sfp/internal/nf"
	"sfp/internal/packet"
	"sfp/internal/pipeline"
	"sfp/internal/vswitch"
)

func main() {
	// A controller wrapping an 8-stage switch, placing with the
	// LP-relaxation + randomized-rounding algorithm ("SFP-Appro.").
	ctl := core.New(core.Options{
		Pipeline:    pipeline.DefaultConfig(),
		Consolidate: true,
		Recirc:      2,
		Algorithm:   core.AlgoApprox,
		Seed:        1,
	})

	vip := packet.IPv4Addr(20, 0, 0, 1)
	backendA := packet.IPv4Addr(10, 0, 0, 1)
	backendB := packet.IPv4Addr(10, 0, 0, 2)

	// Three tenants with different chains.
	tenants := []*vswitch.SFC{
		{ // Tenant 1: classic web chain.
			Tenant: 1, BandwidthGbps: 40,
			NFs: []*nf.Config{
				permitAll(), classify(3), loadBalance(vip, backendA), route(),
			},
		},
		{ // Tenant 2: same NFs, different order (may need recirculation).
			Tenant: 2, BandwidthGbps: 25,
			NFs: []*nf.Config{
				loadBalance(vip, backendB), permitAll(), route(),
			},
		},
		{ // Tenant 3: security-only chain.
			Tenant: 3, BandwidthGbps: 10,
			NFs: []*nf.Config{
				permitAll(), monitor(),
			},
		},
	}

	m, err := ctl.Provision(tenants)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("provisioned %d tenants: %.0f Gbps offloaded, %.0f Gbps backplane, %.1f blocks/stage\n\n",
		m.Deployed, m.ThroughputGbps, m.BackplaneGbps, m.BlockUtil)

	// Push one packet per tenant.
	for _, t := range tenants {
		p := packet.NewBuilder().
			WithTenant(t.Tenant).
			WithIPv4(packet.IPv4Addr(192, 168, 0, byte(t.Tenant)), vip).
			WithTCP(40000+uint16(t.Tenant), 80).
			WithWireLen(256).
			Build()
		res := ctl.VSwitch().Process(p, 0)
		fmt.Printf("tenant %d: %d NFs applied over %d pass(es), %.0f ns, dst now %s, class %d, egress port %d\n",
			t.Tenant, res.TablesApplied, res.Passes, res.LatencyNs,
			packet.FormatIPv4(p.IPv4.Dst), p.Meta.ClassID, p.Meta.EgressPort)
	}

	// Traffic from an unknown tenant passes through untouched.
	ghost := packet.NewBuilder().WithTenant(99).WithIPv4(1, vip).WithTCP(5, 80).Build()
	res := ctl.VSwitch().Process(ghost, 0)
	fmt.Printf("\ntenant 99 (not provisioned): %d NFs applied, dst unchanged: %v\n",
		res.TablesApplied, ghost.IPv4.Dst == vip)
}

func permitAll() *nf.Config {
	return &nf.Config{Type: nf.Firewall, Rules: []nf.ConfigRule{{
		Matches: []pipeline.Match{pipeline.Wildcard(), pipeline.Wildcard(), pipeline.Wildcard(), pipeline.Wildcard()},
		Action:  "permit",
	}}}
}

func classify(class uint64) *nf.Config {
	return &nf.Config{Type: nf.TrafficClassifier, Rules: []nf.ConfigRule{{
		Matches: []pipeline.Match{pipeline.Wildcard(), pipeline.Between(0, 65535)},
		Action:  "set_class", Params: []uint64{class},
	}}}
}

func loadBalance(vip uint32, backend uint32) *nf.Config {
	return &nf.Config{Type: nf.LoadBalancer, Rules: []nf.ConfigRule{{
		Matches: []pipeline.Match{pipeline.Eq(uint64(vip)), pipeline.Eq(80)},
		Action:  "dnat", Params: []uint64{uint64(backend), 0},
	}}}
}

func route() *nf.Config {
	return &nf.Config{Type: nf.Router, Rules: []nf.ConfigRule{{
		Matches: []pipeline.Match{pipeline.Prefix(uint64(packet.IPv4Addr(10, 0, 0, 0)), 8)},
		Action:  "fwd", Params: []uint64{7},
	}}}
}

func monitor() *nf.Config {
	return &nf.Config{Type: nf.Monitor, Rules: []nf.ConfigRule{{
		Matches: []pipeline.Match{pipeline.Wildcard(), pipeline.Wildcard()},
		Action:  "count", Params: []uint64{0},
	}}}
}
