module sfp

go 1.22
