// Package sfp's root benchmarks regenerate every figure of the paper's
// evaluation (§VI) as testing.B benchmarks, reporting the headline numbers
// as custom metrics. Each BenchmarkFigN corresponds to the experiment
// indexed in DESIGN.md §3; `go run ./cmd/sfpexp -fig all` prints the full
// series the figures plot.
package sfp

import (
	"testing"

	"sfp/internal/experiments"
)

// benchScale keeps the per-iteration cost of control-plane benchmarks
// bounded; cmd/sfpexp -scale paper runs the full published parameters.
func benchScale() experiments.Scale {
	s := experiments.QuickScale()
	s.Seeds = 1
	s.Fig6Ls = []int{15}
	s.Fig7Recircs = []int{0, 1}
	s.Fig7L = 8
	s.Fig8IPLs = []int{3}
	s.Fig8ApproxLs = []int{15}
	s.Fig8IPTimeCapSec = 10
	s.Fig9L = 6
	s.Fig9LimitsSec = []float64{0.01, 5}
	s.Fig10Ls = []int{6}
	s.Fig10IPTimeCapSec = 10
	s.Fig11DropRates = []float64{0.5}
	s.Fig11Allocated = 8
	s.Fig11Candidates = 20
	return s
}

// BenchmarkFig4ThroughputVsPacketSize regenerates Fig. 4: SFP vs DPDK
// throughput over the packet-size sweep. Reported metrics: the 64-byte
// packet-rate advantage (paper: ≥10×) and DPDK's 1500 B throughput
// (paper: saturates 100 Gbps).
func BenchmarkFig4ThroughputVsPacketSize(b *testing.B) {
	var gap64, dpdk1500 float64
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Fig4(500)
		if err != nil {
			b.Fatal(err)
		}
		gap64 = tbl.Rows[0][1] / tbl.Rows[0][3]
		dpdk1500 = tbl.Rows[len(tbl.Rows)-1][3]
	}
	b.ReportMetric(gap64, "x-gap@64B")
	b.ReportMetric(dpdk1500, "dpdk-Gbps@1500B")
}

// BenchmarkFig5Latency regenerates Fig. 5: SFP ≈341 ns, +≈35 ns for three
// recirculations, DPDK ≈1151 ns.
func BenchmarkFig5Latency(b *testing.B) {
	var sfp, recir, dpdk float64
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Fig5(500)
		if err != nil {
			b.Fatal(err)
		}
		sfp, recir, dpdk = 0, 0, 0
		for _, row := range tbl.Rows {
			sfp += row[1]
			recir += row[2]
			dpdk += row[3]
		}
		n := float64(len(tbl.Rows))
		sfp, recir, dpdk = sfp/n, recir/n, dpdk/n
	}
	b.ReportMetric(sfp, "sfp-ns")
	b.ReportMetric(recir-sfp, "recirc-overhead-ns")
	b.ReportMetric(dpdk, "dpdk-ns")
}

// BenchmarkFig6SweepSFCs regenerates Fig. 6: throughput and utilization vs
// candidate count, SFP against the no-consolidation baseline.
func BenchmarkFig6SweepSFCs(b *testing.B) {
	sc := benchScale()
	var sfpGbps, entryGain float64
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Fig6(sc)
		if err != nil {
			b.Fatal(err)
		}
		row := tbl.Rows[len(tbl.Rows)-1]
		sfpGbps = row[1]
		if row[6] > 0 {
			entryGain = row[3] / row[6]
		}
	}
	b.ReportMetric(sfpGbps, "sfp-Gbps")
	b.ReportMetric(entryGain, "entry-util-gain")
}

// BenchmarkFig7Recirculation regenerates Fig. 7: the throughput lift from
// allowing one recirculation on length-8 chains.
func BenchmarkFig7Recirculation(b *testing.B) {
	sc := benchScale()
	var lift float64
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Fig7(sc)
		if err != nil {
			b.Fatal(err)
		}
		base := tbl.Rows[0][1]
		if base == 0 {
			base = 1
		}
		lift = tbl.Rows[len(tbl.Rows)-1][1] / base
	}
	b.ReportMetric(lift, "r1-throughput-lift")
}

// BenchmarkFig8SolverRuntime regenerates Fig. 8: IP vs approximation solver
// runtime.
func BenchmarkFig8SolverRuntime(b *testing.B) {
	sc := benchScale()
	var ipSec, apSec float64
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Fig8(sc)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range tbl.Rows {
			if row[1] == 1 {
				ipSec = row[2]
			} else {
				apSec = row[2]
			}
		}
	}
	b.ReportMetric(ipSec, "ip-sec")
	b.ReportMetric(apSec, "appro-sec")
}

// BenchmarkFig9EarlyTermination regenerates Fig. 9: cold-solver objective
// under runtime limits (0 at the tightest, near-optimal soon after).
func BenchmarkFig9EarlyTermination(b *testing.B) {
	sc := benchScale()
	var fracAtSecond float64
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Fig9(sc)
		if err != nil {
			b.Fatal(err)
		}
		if tbl.Rows[0][2] != 0 {
			b.Fatalf("tightest limit produced nonzero objective %v", tbl.Rows[0][2])
		}
		fracAtSecond = tbl.Rows[1][4]
	}
	b.ReportMetric(fracAtSecond, "frac-of-best@2nd-limit")
}

// BenchmarkFig10Algorithms regenerates Fig. 10: IP ≥ Appro ≥ Greedy.
func BenchmarkFig10Algorithms(b *testing.B) {
	sc := benchScale()
	var ip, ap, gr float64
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Fig10(sc)
		if err != nil {
			b.Fatal(err)
		}
		row := tbl.Rows[len(tbl.Rows)-1]
		ip, ap, gr = row[1], row[2], row[3]
	}
	b.ReportMetric(ip, "ip-Gbps")
	b.ReportMetric(ap, "appro-Gbps")
	b.ReportMetric(gr, "greedy-Gbps")
}

// BenchmarkFig11RuntimeUpdate regenerates Fig. 11: post-update throughput
// relative to the pre-update state.
func BenchmarkFig11RuntimeUpdate(b *testing.B) {
	sc := benchScale()
	var updated, origin float64
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Fig11(sc)
		if err != nil {
			b.Fatal(err)
		}
		updated, origin = tbl.Rows[0][1], tbl.Rows[0][2]
	}
	b.ReportMetric(updated, "updated-Gbps")
	b.ReportMetric(origin, "origin-Gbps")
}
