// Package sfp is a from-scratch Go reproduction of "SFP: Service Function
// Chain Provision on Programmable Switches for Cloud Tenants" (IPPS 2022):
// a virtualized programmable-switch data plane that hosts multiple tenants'
// service function chains on shared physical NFs, and a control plane that
// jointly optimizes physical and logical NF placement by integer
// programming with LP-relaxation rounding and greedy alternatives.
//
// The root package holds the benchmark harness (bench_test.go): one
// testing.B benchmark per figure of the paper's evaluation. The library
// lives under internal/ (see README.md for the architecture map), the
// runnable tools under cmd/, and usage examples under examples/.
package sfp
